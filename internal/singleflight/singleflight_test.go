package singleflight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoReturnsResult(t *testing.T) {
	var g Group
	v, err, shared := g.Do("k", func() (any, error) { return 42, nil })
	if v != 42 || err != nil || shared {
		t.Errorf("Do = %v, %v, %v", v, err, shared)
	}
}

func TestDoReturnsError(t *testing.T) {
	var g Group
	want := errors.New("boom")
	_, err, _ := g.Do("k", func() (any, error) { return nil, want })
	if err != want {
		t.Errorf("err = %v", err)
	}
}

func TestConcurrentCallsShareOneExecution(t *testing.T) {
	var g Group
	var execs atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const n = 50
	var wg sync.WaitGroup
	results := make([]any, n)
	sharedCount := atomic.Int64{}

	// First caller blocks inside fn until released, guaranteeing the
	// other callers arrive while it is in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], _, _ = g.Do("k", func() (any, error) {
			close(started)
			execs.Add(1)
			<-release
			return "shared", nil
		})
	}()
	<-started
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, shared := g.Do("k", func() (any, error) {
				execs.Add(1)
				return "shared", nil
			})
			results[i] = v
			if shared {
				sharedCount.Add(1)
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the waiters pile up
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Errorf("fn executed %d times, want 1", got)
	}
	for i, v := range results {
		if v != "shared" {
			t.Errorf("results[%d] = %v", i, v)
		}
	}
	if sharedCount.Load() != n-1 {
		t.Errorf("shared callers = %d, want %d", sharedCount.Load(), n-1)
	}
}

func TestKeyForgottenAfterCompletion(t *testing.T) {
	var g Group
	var execs atomic.Int64
	for i := 0; i < 3; i++ {
		g.Do("k", func() (any, error) { execs.Add(1); return nil, nil })
	}
	if got := execs.Load(); got != 3 {
		t.Errorf("sequential calls executed %d times, want 3", got)
	}
}

func TestDistinctKeysDoNotShare(t *testing.T) {
	var g Group
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		g.Do("a", func() (any, error) { <-block; return nil, nil })
		close(done)
	}()
	// A different key must not wait for "a".
	v, _, _ := g.Do("b", func() (any, error) { return "b", nil })
	if v != "b" {
		t.Errorf("Do(b) = %v", v)
	}
	close(block)
	<-done
}

func TestPanicPropagatesAndReleasesWaiters(t *testing.T) {
	var g Group
	entered := make(chan struct{})
	type waitResult struct {
		err    error
		shared bool
	}
	waiterDone := make(chan waitResult, 1)
	panicked := make(chan any, 1)

	go func() {
		defer func() { panicked <- recover() }()
		g.Do("k", func() (any, error) {
			close(entered)
			time.Sleep(20 * time.Millisecond)
			panic("boom")
		})
	}()
	<-entered
	go func() {
		_, err, shared := g.Do("k", func() (any, error) { return nil, nil })
		waiterDone <- waitResult{err, shared}
	}()

	if r := <-panicked; r != "boom" {
		t.Errorf("recovered %v, want boom", r)
	}
	select {
	case res := <-waiterDone:
		// The waiter either joined the panicked call (and must see its
		// error) or arrived after the key was forgotten and ran its own
		// fn; both are live outcomes — the point is no deadlock.
		if res.shared && res.err == nil {
			t.Error("waiter that joined a panicked call must see an error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter deadlocked after panic")
	}
}
