// Package singleflight suppresses duplicate concurrent calls: when N
// goroutines ask for the same key at once, one executes the function and
// the other N−1 block and share its result. The live proxy uses it for
// cache admission, so a thundering herd of first requests for one object
// produces exactly one origin fetch.
//
// It is a minimal, dependency-free implementation of the pattern from
// golang.org/x/sync/singleflight.
package singleflight

import (
	"fmt"
	"sync"
)

// call is an in-flight or completed Do invocation.
type call struct {
	wg  sync.WaitGroup
	val any
	err error
}

// Group deduplicates concurrent calls by key. The zero value is ready to
// use.
type Group struct {
	mu    sync.Mutex
	calls map[string]*call
}

// Do executes fn and returns its result, ensuring that at any moment at
// most one execution per key is in flight. Concurrent callers with the
// same key wait for the in-flight execution and receive its result;
// shared reports whether the result was produced by another caller.
// Once fn returns, the key is forgotten, so a later Do runs fn again.
func (g *Group) Do(key string, fn func() (any, error)) (v any, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &call{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				// Waiters observe the panic as an error; the panic
				// itself propagates to the executing caller.
				c.err = fmt.Errorf("singleflight: call panicked: %v", r)
				g.forget(key, c)
				panic(r)
			}
			g.forget(key, c)
		}()
		c.val, c.err = fn()
	}()
	return c.val, c.err, false
}

// forget releases the key and wakes the waiters.
func (g *Group) forget(key string, c *call) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.wg.Done()
}
