package simtime

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeAdd(t *testing.T) {
	tests := []struct {
		name string
		t    Time
		d    time.Duration
		want Time
	}{
		{"zero plus zero", Epoch, 0, Epoch},
		{"epoch plus hour", Epoch, time.Hour, At(time.Hour)},
		{"negative duration", At(2 * time.Hour), -time.Hour, At(time.Hour)},
		{"max saturates", MaxTime, time.Hour, MaxTime},
		{"overflow saturates", MaxTime - 1, time.Hour, MaxTime},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.t.Add(tt.d); got != tt.want {
				t.Errorf("(%v).Add(%v) = %v, want %v", tt.t, tt.d, got, tt.want)
			}
		})
	}
}

func TestTimeSub(t *testing.T) {
	a := At(3 * time.Hour)
	b := At(time.Hour)
	if got := a.Sub(b); got != 2*time.Hour {
		t.Errorf("Sub = %v, want 2h", got)
	}
	if got := b.Sub(a); got != -2*time.Hour {
		t.Errorf("Sub = %v, want -2h", got)
	}
}

func TestTimeOrdering(t *testing.T) {
	a, b := At(time.Minute), At(time.Hour)
	if !a.Before(b) || b.Before(a) {
		t.Error("Before ordering wrong")
	}
	if !b.After(a) || a.After(b) {
		t.Error("After ordering wrong")
	}
	if a.Before(a) || a.After(a) {
		t.Error("a neither before nor after itself")
	}
}

func TestMinMaxAbsDiff(t *testing.T) {
	a, b := At(time.Minute), At(time.Hour)
	if Min(a, b) != a || Min(b, a) != a {
		t.Error("Min wrong")
	}
	if Max(a, b) != b || Max(b, a) != b {
		t.Error("Max wrong")
	}
	if AbsDiff(a, b) != 59*time.Minute || AbsDiff(b, a) != 59*time.Minute {
		t.Error("AbsDiff wrong")
	}
}

func TestTimeString(t *testing.T) {
	if got := At(90 * time.Second).String(); got != "1m30s" {
		t.Errorf("String = %q, want 1m30s", got)
	}
	if got := MaxTime.String(); got != "∞" {
		t.Errorf("MaxTime.String = %q", got)
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := NewInterval(At(time.Minute), At(time.Hour))
	if iv.IsEmpty() {
		t.Error("non-empty interval reported empty")
	}
	if iv.Length() != 59*time.Minute {
		t.Errorf("Length = %v", iv.Length())
	}
	if !iv.Contains(At(time.Minute)) {
		t.Error("interval must contain its start")
	}
	if iv.Contains(At(time.Hour)) {
		t.Error("half-open interval must not contain its end")
	}
	if !iv.Contains(At(30 * time.Minute)) {
		t.Error("interval must contain midpoint")
	}

	empty := NewInterval(At(time.Minute), At(time.Minute))
	if !empty.IsEmpty() || empty.Length() != 0 {
		t.Error("point interval must be empty with zero length")
	}
	if empty.Contains(At(time.Minute)) {
		t.Error("empty interval contains nothing")
	}
}

func TestNewIntervalPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted interval")
		}
	}()
	NewInterval(At(time.Hour), At(time.Minute))
}

func TestOpenInterval(t *testing.T) {
	iv := Open(At(time.Hour))
	if iv.IsEmpty() {
		t.Error("open interval is not empty")
	}
	if !iv.Contains(At(100 * time.Hour)) {
		t.Error("open interval contains all later instants")
	}
	if iv.End != MaxTime || !iv.End.IsMax() {
		t.Error("open interval must end at MaxTime")
	}
}

func TestIntervalOverlaps(t *testing.T) {
	mk := func(s, e time.Duration) Interval { return NewInterval(At(s), At(e)) }
	tests := []struct {
		name string
		a, b Interval
		want bool
	}{
		{"disjoint", mk(0, time.Minute), mk(2*time.Minute, 3*time.Minute), false},
		{"touching", mk(0, time.Minute), mk(time.Minute, 2*time.Minute), false},
		{"overlap", mk(0, 2*time.Minute), mk(time.Minute, 3*time.Minute), true},
		{"nested", mk(0, time.Hour), mk(time.Minute, 2*time.Minute), true},
		{"identical", mk(0, time.Minute), mk(0, time.Minute), true},
		{"empty vs any", mk(time.Minute, time.Minute), mk(0, time.Hour), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Overlaps(tt.b); got != tt.want {
				t.Errorf("Overlaps = %v, want %v", got, tt.want)
			}
			if got := tt.b.Overlaps(tt.a); got != tt.want {
				t.Errorf("Overlaps (sym) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIntervalDistance(t *testing.T) {
	mk := func(s, e time.Duration) Interval { return NewInterval(At(s), At(e)) }
	tests := []struct {
		name string
		a, b Interval
		want time.Duration
	}{
		{"overlapping", mk(0, 2*time.Minute), mk(time.Minute, 3*time.Minute), 0},
		{"touching", mk(0, time.Minute), mk(time.Minute, 2*time.Minute), 0},
		{"gap", mk(0, time.Minute), mk(3*time.Minute, 4*time.Minute), 2 * time.Minute},
		{"open ended overlap", Open(At(time.Minute)), mk(2*time.Minute, 3*time.Minute), 0},
		{"before open", mk(0, time.Minute), Open(At(5 * time.Minute)), 4 * time.Minute},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Distance(tt.b); got != tt.want {
				t.Errorf("Distance = %v, want %v", got, tt.want)
			}
			if got := tt.b.Distance(tt.a); got != tt.want {
				t.Errorf("Distance (sym) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIntervalDistancePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty interval distance")
		}
	}()
	empty := NewInterval(Epoch, Epoch)
	empty.Distance(Open(Epoch))
}

func TestIntervalClip(t *testing.T) {
	mk := func(s, e time.Duration) Interval { return NewInterval(At(s), At(e)) }
	bounds := mk(time.Minute, 3*time.Minute)
	tests := []struct {
		name string
		in   Interval
		want Interval
	}{
		{"inside", mk(90*time.Second, 2*time.Minute), mk(90*time.Second, 2*time.Minute)},
		{"spanning", mk(0, time.Hour), bounds},
		{"left overhang", mk(0, 2*time.Minute), mk(time.Minute, 2*time.Minute)},
		{"disjoint right", mk(time.Hour, 2*time.Hour), Interval{At(time.Hour), At(time.Hour)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.in.Clip(bounds)
			if got.Start != tt.want.Start || got.End != tt.want.End {
				t.Errorf("Clip = %v, want %v", got, tt.want)
			}
		})
	}
}

// boundedTime maps arbitrary int64s into a sane simulated-time range so the
// quick-check properties exercise realistic values without overflow.
func boundedTime(v int64) Time {
	if v < 0 {
		v = -v
	}
	return Time(v % int64(10*365*24*time.Hour))
}

func TestPropertyDistanceSymmetric(t *testing.T) {
	f := func(a1, a2, b1, b2 int64) bool {
		s1, e1 := boundedTime(a1), boundedTime(a2)
		s2, e2 := boundedTime(b1), boundedTime(b2)
		iv1 := NewInterval(Min(s1, e1), Max(s1, e1)+1)
		iv2 := NewInterval(Min(s2, e2), Max(s2, e2)+1)
		return iv1.Distance(iv2) == iv2.Distance(iv1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyDistanceZeroIffOverlapOrTouch(t *testing.T) {
	f := func(a1, a2, b1, b2 int64) bool {
		s1, e1 := boundedTime(a1), boundedTime(a2)
		s2, e2 := boundedTime(b1), boundedTime(b2)
		iv1 := NewInterval(Min(s1, e1), Max(s1, e1)+1)
		iv2 := NewInterval(Min(s2, e2), Max(s2, e2)+1)
		d := iv1.Distance(iv2)
		touchOrOverlap := iv1.Overlaps(iv2) || iv1.End == iv2.Start || iv2.End == iv1.Start
		return (d == 0) == touchOrOverlap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyAddSubRoundTrip(t *testing.T) {
	f := func(base int64, delta int32) bool {
		tm := boundedTime(base)
		d := time.Duration(delta)
		return tm.Add(d).Sub(tm) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyClipWithinBounds(t *testing.T) {
	f := func(a1, a2, b1, b2 int64) bool {
		s1, e1 := boundedTime(a1), boundedTime(a2)
		s2, e2 := boundedTime(b1), boundedTime(b2)
		iv := NewInterval(Min(s1, e1), Max(s1, e1))
		bounds := NewInterval(Min(s2, e2), Max(s2, e2))
		got := iv.Clip(bounds)
		if got.IsEmpty() {
			return true
		}
		return got.Start >= bounds.Start && got.End <= bounds.End &&
			got.Start >= iv.Start && got.End <= iv.End
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxTimeLengthDoesNotOverflow(t *testing.T) {
	iv := Open(Epoch)
	if iv.Length() <= 0 {
		t.Error("open interval length must be positive")
	}
	if int64(iv.Length()) != math.MaxInt64 {
		t.Errorf("open-from-epoch length = %d", iv.Length())
	}
}
