// Package simtime provides the time model used throughout the simulator.
//
// Simulated instants (Time) are kept distinct from periods (time.Duration)
// so that instants cannot accidentally be added together. An instant is a
// nanosecond offset from the simulation epoch (Time zero). The package also
// provides half-open validity intervals, which are the foundation of the
// mutual-consistency semantics of the paper (Eq. 4): a cached version of an
// object is valid at the server over an interval [modified, superseded),
// and two cached versions are mutually consistent within tolerance δ iff
// the distance between their validity intervals is at most δ.
package simtime

import (
	"fmt"
	"time"
)

// Time is an instant in simulated time, measured as a nanosecond offset
// from the simulation epoch. The zero value is the epoch itself.
type Time int64

// Common reference instants.
const (
	// Epoch is the origin of simulated time.
	Epoch Time = 0
	// MaxTime is the largest representable instant. It is used as the
	// "never" sentinel for open-ended validity intervals.
	MaxTime Time = 1<<63 - 1
)

// At returns the instant d after the epoch.
func At(d time.Duration) Time { return Time(d) }

// Add returns the instant d after t. Adding a duration to MaxTime
// saturates at MaxTime rather than wrapping around.
func (t Time) Add(d time.Duration) Time {
	if t == MaxTime {
		return MaxTime
	}
	s := t + Time(d)
	if d > 0 && s < t { // overflow
		return MaxTime
	}
	return s
}

// Sub returns the period t−u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Since returns the elapsed period from u to t (t−u). It is a readability
// alias for Sub used where t is "now".
func (t Time) Since(u Time) time.Duration { return t.Sub(u) }

// IsMax reports whether t is the MaxTime sentinel.
func (t Time) IsMax() bool { return t == MaxTime }

// Duration returns the offset of t from the epoch as a period.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats t as an offset from the epoch, e.g. "2h3m0s". MaxTime
// formats as "∞" since it denotes "never".
func (t Time) String() string {
	if t == MaxTime {
		return "∞"
	}
	return time.Duration(t).String()
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// AbsDiff returns |a−b| as a period.
func AbsDiff(a, b Time) time.Duration {
	if a > b {
		return a.Sub(b)
	}
	return b.Sub(a)
}

// Interval is a half-open span of simulated time [Start, End). An interval
// with End == MaxTime is open-ended ("still current"). The zero value is
// the empty interval [0, 0).
type Interval struct {
	Start Time
	End   Time
}

// NewInterval returns the interval [start, end). It panics if end precedes
// start, which always indicates a programming error in the caller.
func NewInterval(start, end Time) Interval {
	if end < start {
		panic(fmt.Sprintf("simtime: invalid interval [%v, %v)", start, end))
	}
	return Interval{Start: start, End: end}
}

// Open returns the open-ended interval [start, ∞).
func Open(start Time) Interval { return Interval{Start: start, End: MaxTime} }

// IsEmpty reports whether the interval contains no instants.
func (iv Interval) IsEmpty() bool { return iv.End <= iv.Start }

// Contains reports whether t lies within [Start, End).
func (iv Interval) Contains(t Time) bool { return t >= iv.Start && t < iv.End }

// Length returns End−Start. Open-ended intervals report the (enormous)
// span to MaxTime; callers that care should first Clip to a horizon.
func (iv Interval) Length() time.Duration {
	if iv.IsEmpty() {
		return 0
	}
	return iv.End.Sub(iv.Start)
}

// Overlaps reports whether the two intervals share at least one instant.
func (iv Interval) Overlaps(other Interval) bool {
	if iv.IsEmpty() || other.IsEmpty() {
		return false
	}
	return iv.Start < other.End && other.Start < iv.End
}

// Clip returns the portion of iv that lies within bounds.
func (iv Interval) Clip(bounds Interval) Interval {
	start := Max(iv.Start, bounds.Start)
	end := Min(iv.End, bounds.End)
	if end < start {
		return Interval{Start: start, End: start}
	}
	return Interval{Start: start, End: end}
}

// Distance returns the gap between the two intervals: zero when they
// overlap or touch, otherwise the span separating them. This is the
// quantity bounded by δ in the paper's M_t-consistency definition (Eq. 4):
// the cached versions of two related objects are mutually consistent iff
// Distance between their server-validity intervals is ≤ δ.
//
// Distance panics if either interval is empty, because the mutual
// consistency question is meaningless for a version that was never valid.
func (iv Interval) Distance(other Interval) time.Duration {
	if iv.IsEmpty() || other.IsEmpty() {
		panic("simtime: Distance on empty interval")
	}
	switch {
	case iv.Overlaps(other):
		return 0
	case iv.End <= other.Start:
		return other.Start.Sub(iv.End)
	default:
		return iv.Start.Sub(other.End)
	}
}

// String formats the interval as "[start, end)".
func (iv Interval) String() string {
	return fmt.Sprintf("[%v, %v)", iv.Start, iv.End)
}
