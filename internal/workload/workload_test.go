package workload

import (
	"testing"
	"time"

	"broadway/internal/core"
)

func catalog() []core.ObjectID {
	return []core.ObjectID{"front", "sports", "finance", "weather", "archive"}
}

func TestGenerateBasics(t *testing.T) {
	reqs, err := Generate(Config{
		Seed: 1, Duration: time.Hour, RatePerMinute: 10, Objects: catalog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~600 expected; Poisson sd ≈ 24.
	if len(reqs) < 450 || len(reqs) > 750 {
		t.Errorf("requests = %d, want ≈600", len(reqs))
	}
	prev := time.Duration(-1)
	for i, r := range reqs {
		if r.At < prev {
			t.Fatalf("request %d out of order", i)
		}
		if r.At >= time.Hour {
			t.Fatalf("request %d outside window: %v", i, r.At)
		}
		prev = r.At
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Duration: time.Hour, RatePerMinute: 5, Objects: catalog()}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	reqs, err := Generate(Config{
		Seed: 3, Duration: 10 * time.Hour, RatePerMinute: 20,
		Objects: catalog(), ZipfS: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := PopularityCounts(catalog(), reqs)
	// The most popular object must dominate the least popular one.
	if counts[0] < counts[len(counts)-1]*4 {
		t.Errorf("zipf skew too weak: %v", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(reqs) {
		t.Errorf("counts sum %d != requests %d", total, len(reqs))
	}
}

func TestGenerateErrors(t *testing.T) {
	base := Config{Seed: 1, Duration: time.Hour, RatePerMinute: 1, Objects: catalog()}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"zero rate", func(c *Config) { c.RatePerMinute = 0 }},
		{"no objects", func(c *Config) { c.Objects = nil }},
		{"bad zipf", func(c *Config) { c.ZipfS = 0.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := Generate(cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestSingleObjectCatalog(t *testing.T) {
	reqs, err := Generate(Config{
		Seed: 1, Duration: time.Hour, RatePerMinute: 5,
		Objects: []core.ObjectID{"only"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if r.Object != "only" {
			t.Fatal("wrong object")
		}
	}
}
