// Package workload generates synthetic client request streams for the
// proxy. The paper's simulator models "a proxy cache that receives
// requests from several clients" (§6.1.1): requests arrive as a Poisson
// process and object popularity follows a Zipf distribution, the standard
// model for web reference streams.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"broadway/internal/core"
)

// Request is one client request.
type Request struct {
	// At is the request instant as an offset from the stream start.
	At time.Duration
	// Object is the requested object.
	Object core.ObjectID
}

// Config parameterizes a request stream.
type Config struct {
	// Seed makes the stream reproducible.
	Seed int64
	// Duration is the stream length.
	Duration time.Duration
	// RatePerMinute is the mean request arrival rate.
	RatePerMinute float64
	// Objects is the catalog, most popular first.
	Objects []core.ObjectID
	// ZipfS is the Zipf skew parameter (> 1; larger = more skewed).
	// Defaults to 1.2.
	ZipfS float64
}

func (c *Config) validate() error {
	switch {
	case c.Duration <= 0:
		return errors.New("workload: non-positive duration")
	case c.RatePerMinute <= 0:
		return errors.New("workload: non-positive rate")
	case len(c.Objects) == 0:
		return errors.New("workload: empty object catalog")
	case c.ZipfS != 0 && c.ZipfS <= 1:
		return fmt.Errorf("workload: zipf s = %v must exceed 1", c.ZipfS)
	}
	return nil
}

// Generate produces the request stream: Poisson arrivals, Zipf-popular
// objects.
func Generate(cfg Config) ([]Request, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := cfg.ZipfS
	if s == 0 {
		s = 1.2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, s, 1, uint64(len(cfg.Objects)-1))
	if zipf == nil {
		return nil, fmt.Errorf("workload: invalid zipf parameters (s=%v, n=%d)", s, len(cfg.Objects))
	}

	meanGap := time.Duration(float64(time.Minute) / cfg.RatePerMinute)
	var out []Request
	at := time.Duration(rng.ExpFloat64() * float64(meanGap))
	for at < cfg.Duration {
		out = append(out, Request{
			At:     at,
			Object: cfg.Objects[zipf.Uint64()],
		})
		at += time.Duration(rng.ExpFloat64() * float64(meanGap))
	}
	return out, nil
}

// PopularityCounts tallies requests per object, in catalog order.
func PopularityCounts(catalog []core.ObjectID, reqs []Request) []int {
	idx := make(map[core.ObjectID]int, len(catalog))
	for i, id := range catalog {
		idx[id] = i
	}
	counts := make([]int, len(catalog))
	for _, r := range reqs {
		if i, ok := idx[r.Object]; ok {
			counts[i]++
		}
	}
	return counts
}
