package webproxy

import (
	"time"

	"broadway/internal/core"
)

// Runtime tolerance override (the /admin/tolerance action): an operator
// changes a resident object's Δ (time tolerance) or Δv (value
// tolerance) without an origin redeploy. The override rebuilds the
// entry's refresh policy around the new tolerance while preserving its
// learned TTR (clamped by the new policy's bounds), persists the change
// through the disk journal so a restart rehydrates it, and pulls the
// next poll to now so the tightened — or loosened — bound takes effect
// immediately rather than one stale TTR later.
//
// The origin still wins eventually: tolerance directives on the next
// 200/304 response overwrite an override exactly as they overwrite
// config defaults. That is deliberate — the override is an operational
// patch for the window until the origin can be fixed, not a permanent
// fork of the consistency contract.

// ToleranceOverride reports what OverrideTolerance applied.
type ToleranceOverride struct {
	// Key is the canonical cache key the override landed on.
	Key string `json:"key"`
	// Delta and ValueDelta are the entry's tolerances after the
	// override (the unchanged one echoes its current value).
	Delta      time.Duration `json:"delta"`
	ValueDelta float64       `json:"value_delta"`
	// Unpaired reports that the entry was half of a partitioned M_v
	// pair and the override dissolved it: the pair's split tolerance
	// was derived from the old Δv, so both halves return to individual
	// policies over their own tolerances.
	Unpaired bool `json:"unpaired,omitempty"`
}

// OverrideTolerance sets a resident object's Δ (dt) and/or Δv (dv) at
// runtime; a non-positive value leaves that tolerance unchanged. It
// reports ok=false when the key is not resident (the disk tier is not
// patched directly: a demoted object re-resolves its tolerances at
// promotion, when the origin gets its say anyway).
func (p *Proxy) OverrideTolerance(key string, dt time.Duration, dv float64) (ToleranceOverride, bool) {
	e := p.lookup(key)
	if e == nil || e.evicted.Load() {
		return ToleranceOverride{}, false
	}
	res := ToleranceOverride{Key: e.key}

	// A paired M_v policy shares a controller whose split tolerance was
	// computed from the OLD Δv; changing it under the pair would leave
	// the partner holding a share of a tolerance that no longer exists.
	// Dissolve the pair first (same rebuild as evicting half of one —
	// see leaveGroup); the halves may re-pair at the next admission.
	if dv > 0 && p.unpair(e) {
		res.Unpaired = true
	}

	e.mu.Lock()
	if dt > 0 {
		e.delta = dt
	}
	if dv > 0 && e.isValue {
		e.valueDelta = dv
	}
	// Rebuild the policy around the new tolerance, carrying the learned
	// TTR over: the object's observed update rate did not change, only
	// the bound the schedule must honor against it.
	var learned time.Duration
	if t, ok := e.policy.(interface{ TTR() time.Duration }); ok {
		learned = t.TTR()
	}
	if e.isValue && e.valueDelta > 0 {
		e.policy = core.NewAdaptiveTTR(core.AdaptiveTTRConfig{
			Delta:  e.valueDelta,
			Bounds: p.cfg.Bounds,
		})
	} else {
		e.policy = core.NewLIMD(core.LIMDConfig{Delta: e.delta, Bounds: p.cfg.Bounds})
	}
	if learned > 0 {
		if r, ok := e.policy.(interface{ RestoreTTR(time.Duration) }); ok {
			r.RestoreTTR(learned)
		}
	}
	res.Delta = e.delta
	res.ValueDelta = e.valueDelta
	e.mu.Unlock()

	// Journal the new tolerances so a restart rehydrates them (the
	// record's Delta/ValueDelta fields overlay config defaults exactly
	// as origin directives do).
	p.persistEntry(e)
	// An immediate poll puts the new bound into effect now: the next
	// TTR is learned under the new policy instead of running out the
	// old schedule first. Harmless if the entry is mid-poll — the slots
	// reconcile through the ordinary reschedule path.
	p.reschedule(e, p.cfg.Clock())
	p.toleranceOverrides.Add(1)
	return res, true
}

// unpair dissolves e's partitioned M_v pair, if any, returning both
// halves to individual AdaptiveTTR policies over their own Δv (the
// widow rebuild leaveGroup runs at eviction, applied symmetrically).
// It reports whether a pair existed. Lock order matches joinGroup:
// groupMu → gs.mu → entry mu.
func (p *Proxy) unpair(e *entry) bool {
	if e.group == "" {
		return false
	}
	p.groupMu.Lock()
	defer p.groupMu.Unlock()
	gs := p.groups[e.group]
	if gs == nil {
		return false
	}
	gs.mu.Lock()
	defer gs.mu.Unlock()
	other := e.partner
	if other == nil {
		return false
	}
	e.partner = nil
	if other.partner == e {
		other.partner = nil
		other.mu.Lock()
		other.paired = false
		other.policy = core.NewAdaptiveTTR(core.AdaptiveTTRConfig{
			Delta:  other.valueDelta,
			Bounds: p.cfg.Bounds,
		})
		other.mu.Unlock()
	}
	e.mu.Lock()
	e.paired = false
	e.mu.Unlock()
	return true
}

// ToleranceOverrides returns the number of runtime tolerance overrides
// applied through OverrideTolerance.
func (p *Proxy) ToleranceOverrides() uint64 { return p.toleranceOverrides.Load() }
