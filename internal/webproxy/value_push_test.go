package webproxy

import (
	"fmt"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"broadway/internal/core"
	"broadway/internal/httpx"
	"broadway/internal/push"
	"broadway/internal/webserver"
)

// This file tests the value-carrying push path of ISSUE 5: a pushed
// event carrying the object's new body is installed directly —
// digest-verified, byte-ledger-charged, group-triggering — with zero
// origin polls, and every way the payload can be unusable (digest
// mismatch, stripped payload, byte-budget refusal) degrades to the
// pushed confirmation poll without ever widening the staleness bound.

// newValuePushSetup wires a value-publishing origin behind a proxy with
// payload application enabled. TTR bounds are wide by default so any
// freshness observed inside a test provably came from the push path.
func newValuePushSetup(t *testing.T, cfg Config) *liveSetup {
	t.Helper()
	origin := webserver.NewOrigin(
		webserver.WithHistoryExtension(true),
		webserver.WithPushHeartbeat(25*time.Millisecond),
		webserver.WithPushValues(0),
	)
	originSrv := httptest.NewServer(origin)
	t.Cleanup(originSrv.Close)

	u, err := url.Parse(originSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	pushURL, _ := url.Parse(originSrv.URL + "/events")
	cfg.Origin = u
	cfg.PushURL = pushURL
	cfg.PushValues = true
	if cfg.PushBackoffMin == 0 {
		cfg.PushBackoffMin = 5 * time.Millisecond
	}
	if cfg.PushBackoffMax == 0 {
		cfg.PushBackoffMax = 50 * time.Millisecond
	}
	if cfg.PushHeartbeatTimeout == 0 {
		cfg.PushHeartbeatTimeout = 200 * time.Millisecond
	}
	if cfg.Bounds == (core.TTRBounds{}) {
		cfg.Bounds = core.TTRBounds{Min: time.Minute, Max: time.Hour}
	}
	if cfg.DefaultDelta == 0 {
		cfg.DefaultDelta = time.Minute
	}
	px, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	px.Start()
	t.Cleanup(px.Close)
	proxySrv := httptest.NewServer(px)
	t.Cleanup(proxySrv.Close)
	return &liveSetup{origin: origin, originSrv: originSrv, proxy: px, proxySrv: proxySrv}
}

// TestValuePushInstallsBodyWithoutOriginPoll is the heart of the
// tentpole: after admission, updates reach the cache through the event
// payload alone — the origin sees no further request of any kind.
func TestValuePushInstallsBodyWithoutOriginPoll(t *testing.T) {
	s := newValuePushSetup(t, Config{})
	s.origin.Set("/quote", []byte("100.00\n"), "text/plain")
	s.origin.SetTolerances("/quote", httpx.Tolerances{ValueDelta: 0.25})
	waitPushConnected(t, s.proxy)
	s.get(t, "/quote")
	admissionPolls := s.origin.Polls()

	for rev := 1; rev <= 5; rev++ {
		s.origin.Set("/quote", []byte(fmt.Sprintf("10%d.50\n", rev)), "text/plain")
	}
	ok := waitFor(t, 3*time.Second, func() bool {
		b, _ := s.proxy.CachedBody("/quote")
		return string(b) == "105.50\n"
	})
	if !ok {
		b, _ := s.proxy.CachedBody("/quote")
		t.Fatalf("pushed value never installed: cached %q (push %+v)", b, s.proxy.PushStats())
	}
	if got := s.origin.Polls(); got != admissionPolls {
		t.Errorf("origin saw %d polls beyond the %d admission fetches; the payload path must cost zero",
			got-admissionPolls, admissionPolls)
	}
	st := s.proxy.PushStats()
	if st.ValueApplied == 0 {
		t.Errorf("no payload applications recorded: %+v", st)
	}
	if st.ValueFallbacks != 0 {
		t.Errorf("%d unexpected fallbacks on the clean path: %+v", st.ValueFallbacks, st)
	}
	os := s.proxy.ObjectStats("/quote")
	if os.Applied == 0 {
		t.Errorf("ObjectStats.Applied = 0: %+v", os)
	}
	// The installed value feeds the value-domain state: a Δv object's
	// cached value must track the pushed body.
	if b, _ := s.proxy.CachedBody("/quote"); strings.TrimSpace(string(b)) != "105.50" {
		t.Errorf("cached body %q", b)
	}
}

// TestValuePushDigestMismatchFallsBackToPoll: a corrupted payload (the
// digest does not cover the body) must never be installed — the proxy
// degrades to a pushed confirmation poll and serves what the origin
// actually holds.
func TestValuePushDigestMismatchFallsBackToPoll(t *testing.T) {
	s := newValuePushSetup(t, Config{})
	s.origin.Set("/page", []byte("genuine v1"), "")
	waitPushConnected(t, s.proxy)
	s.get(t, "/page")
	pollsBefore := s.origin.Polls()

	s.origin.InjectPushEvent(push.Event{
		Kind: push.KindUpdate, Key: "/page", ModTime: time.Now().Add(time.Hour),
		Body: []byte("forged body"), HasBody: true, Digest: "0123456789abcdef",
	})
	if !waitFor(t, 3*time.Second, func() bool { return s.proxy.PushStats().ValueFallbacks >= 1 }) {
		t.Fatalf("digest mismatch never fell back: %+v", s.proxy.PushStats())
	}
	if !waitFor(t, 3*time.Second, func() bool { return s.origin.Polls() > pollsBefore }) {
		t.Fatal("fallback never reached the origin")
	}
	b, _ := s.proxy.CachedBody("/page")
	if string(b) != "genuine v1" {
		t.Errorf("cache holds %q; the forged body must never be installed", b)
	}
	if st := s.proxy.PushStats(); st.ValueApplied != 0 {
		t.Errorf("forged payload counted as applied: %+v", st)
	}
}

// TestValuePushStrippedPayloadFallsBackToPoll: when the negotiated cap
// cannot carry the body, the hub degrades the frame to an invalidation
// and the proxy confirms by polling — the update is never lost and
// never stale beyond the pushed-poll path.
func TestValuePushStrippedPayloadFallsBackToPoll(t *testing.T) {
	s := newValuePushSetup(t, Config{PushPayloadCap: 64})
	s.origin.Set("/fat", []byte("small v1"), "")
	waitPushConnected(t, s.proxy)
	s.get(t, "/fat")

	big := strings.Repeat("B", 512) // over the proxy's 64-byte cap, under the origin's
	s.origin.Set("/fat", []byte(big), "")
	if !waitFor(t, 3*time.Second, func() bool {
		b, _ := s.proxy.CachedBody("/fat")
		return string(b) == big
	}) {
		t.Fatalf("stripped-payload update never confirmed: %+v", s.proxy.PushStats())
	}
	st := s.proxy.PushStats()
	if st.ValueFallbacks == 0 {
		t.Errorf("stripped payload not counted as a fallback: %+v", st)
	}
	if os := s.proxy.ObjectStats("/fat"); os.Pushed == 0 {
		t.Errorf("freshness did not come from a pushed poll: %+v", os)
	}

	// A body within the cap still rides the payload path afterwards.
	pollsBefore := s.origin.Polls()
	s.origin.Set("/fat", []byte("small v2"), "")
	if !waitFor(t, 3*time.Second, func() bool {
		b, _ := s.proxy.CachedBody("/fat")
		return string(b) == "small v2"
	}) {
		t.Fatal("in-cap update never installed")
	}
	if got := s.origin.Polls(); got != pollsBefore {
		t.Errorf("in-cap update cost %d polls, want 0", got-pollsBefore)
	}
}

// TestValuePushByteBudgetRefusal: a pushed body that alone overflows
// MaxBytes must not be installed (it would immediately evict itself);
// the pushed poll runs the established oversized-growth unwind instead.
func TestValuePushByteBudgetRefusal(t *testing.T) {
	s := newValuePushSetup(t, Config{MaxBytes: 2048})
	s.origin.Set("/obj", []byte("fits"), "")
	waitPushConnected(t, s.proxy)
	s.get(t, "/obj")

	s.origin.Set("/obj", []byte(strings.Repeat("x", 4096)), "")
	if !waitFor(t, 3*time.Second, func() bool { return s.proxy.PushStats().ValueFallbacks >= 1 }) {
		t.Fatalf("budget refusal never fell back: %+v", s.proxy.PushStats())
	}
	// The pushed poll fetched the grown body and ran the refresh-growth
	// rule: an object over the whole budget cannot stay resident.
	if !waitFor(t, 3*time.Second, func() bool { return !s.proxy.ObjectStats("/obj").Cached }) {
		t.Errorf("over-budget object still resident: %+v (cache %+v)",
			s.proxy.ObjectStats("/obj"), s.proxy.CacheStats())
	}
	if got := s.proxy.ResidentBytes(); got > 2048 {
		t.Errorf("ledger over budget after the unwind: %d", got)
	}
}

// TestValuePushAppliedUpdateTriggersGroup: an update learned from a
// payload imposes the same §3.2 mutual obligation as one learned by
// polling — group members get triggered even though no poll ran for
// the updated object itself.
func TestValuePushAppliedUpdateTriggersGroup(t *testing.T) {
	s := newValuePushSetup(t, Config{
		Mode:              core.TriggerAll,
		DefaultGroupDelta: 5 * time.Millisecond,
	})
	s.origin.Set("/story", []byte("story v1"), "text/html")
	s.origin.Set("/photo", []byte("photo v1"), "image/png")
	for _, path := range []string{"/story", "/photo"} {
		s.origin.SetTolerances(path, httpx.Tolerances{Group: "news"})
	}
	waitPushConnected(t, s.proxy)
	s.get(t, "/story")
	time.Sleep(30 * time.Millisecond) // desynchronize the two schedules
	s.get(t, "/photo")

	rev := 1
	ok := waitFor(t, 5*time.Second, func() bool {
		rev++
		s.origin.Set("/story", []byte(fmt.Sprintf("story v%d", rev)), "text/html")
		return s.proxy.ObjectStats("/photo").Triggered > 0
	})
	if !ok {
		t.Fatalf("applied story updates never triggered the photo (story %+v photo %+v push %+v)",
			s.proxy.ObjectStats("/story"), s.proxy.ObjectStats("/photo"), s.proxy.PushStats())
	}
	if s.proxy.ObjectStats("/story").Applied == 0 {
		t.Errorf("story updates did not ride the payload path: %+v", s.proxy.ObjectStats("/story"))
	}
}

// TestTwoHopValuePushZeroConfirmationPolls: through a relaying parent,
// one origin message feeds the whole chain — the parent installs the
// payload, republishes it downstream, and the leaf installs it too;
// neither hop issues a confirmation poll.
func TestTwoHopValuePushZeroConfirmationPolls(t *testing.T) {
	origin := webserver.NewOrigin(
		webserver.WithHistoryExtension(true),
		webserver.WithPushHeartbeat(25*time.Millisecond),
		webserver.WithPushValues(0),
	)
	originSrv := httptest.NewServer(origin)
	t.Cleanup(originSrv.Close)
	originURL, _ := url.Parse(originSrv.URL)
	pushURL, _ := url.Parse(originSrv.URL + "/events")

	wide := Config{
		DefaultDelta:         time.Minute,
		Bounds:               core.TTRBounds{Min: time.Minute, Max: time.Hour},
		PushBackoffMin:       5 * time.Millisecond,
		PushBackoffMax:       50 * time.Millisecond,
		PushHeartbeatTimeout: 200 * time.Millisecond,
		PushValues:           true,
	}
	parentCfg := wide
	parentCfg.Origin = originURL
	parentCfg.PushURL = pushURL
	parentCfg.RelayEvents = true
	parentCfg.RelayHeartbeat = 25 * time.Millisecond
	parent, err := New(parentCfg)
	if err != nil {
		t.Fatal(err)
	}
	parent.Start()
	t.Cleanup(parent.Close)
	parentSrv := httptest.NewServer(parent)
	t.Cleanup(parentSrv.Close)

	leafCfg := wide
	leafCfg.Origin, _ = url.Parse(parentSrv.URL)
	leafCfg.PushURL, _ = url.Parse(parentSrv.URL + "/events")
	leaf, err := New(leafCfg)
	if err != nil {
		t.Fatal(err)
	}
	leaf.Start()
	t.Cleanup(leaf.Close)
	leafSrv := httptest.NewServer(leaf)
	t.Cleanup(leafSrv.Close)

	if !waitFor(t, 3*time.Second, func() bool {
		return parent.PushStats().Connected && leaf.PushStats().Connected
	}) {
		t.Fatal("chain never connected")
	}
	origin.Set("/quote", []byte("100.00\n"), "text/plain")
	rec := httptest.NewRecorder()
	leaf.ServeHTTP(rec, httptest.NewRequest("GET", "/quote", nil))
	if rec.Code != 200 {
		t.Fatalf("admission: %d", rec.Code)
	}
	admissionPolls := origin.Polls()

	origin.Set("/quote", []byte("101.25\n"), "text/plain")
	if !waitFor(t, 4*time.Second, func() bool {
		b, _ := leaf.CachedBody("/quote")
		return string(b) == "101.25\n"
	}) {
		t.Fatalf("payload never reached the leaf (parent %+v, relay %+v, leaf %+v)",
			parent.PushStats(), parent.RelayStats(), leaf.PushStats())
	}
	if got := origin.Polls(); got != admissionPolls {
		t.Errorf("origin saw %d polls beyond admission; the chain must cost zero", got-admissionPolls)
	}
	if st := parent.ObjectStats("/quote"); st.Applied == 0 || st.Pushed != 0 {
		t.Errorf("parent did not install via payload: %+v", st)
	}
	if st := leaf.ObjectStats("/quote"); st.Applied == 0 || st.Pushed != 0 {
		t.Errorf("leaf did not install via payload: %+v", st)
	}
	if fb := leaf.PushStats().ValueFallbacks; fb != 0 {
		t.Errorf("leaf fell back %d times on the clean path", fb)
	}
}

// TestValuePushDuplicateEventsAreRecognized: at-least-once delivery plus
// the relay's pass-through/confirmation pair means the same update can
// arrive more than once; a duplicate must cost neither a poll nor a
// re-install.
func TestValuePushDuplicateEventsAreRecognized(t *testing.T) {
	s := newValuePushSetup(t, Config{})
	s.origin.Set("/page", []byte("v1"), "")
	waitPushConnected(t, s.proxy)
	s.get(t, "/page")
	pollsBefore := s.origin.Polls()

	s.origin.Set("/page", []byte("v2"), "")
	if !waitFor(t, 3*time.Second, func() bool {
		b, _ := s.proxy.CachedBody("/page")
		return string(b) == "v2"
	}) {
		t.Fatal("update never installed")
	}
	appliedAfterFirst := s.proxy.PushStats().ValueApplied

	// Replay the exact same event (same modification instant).
	e := s.proxy.lookup("/page")
	e.mu.RLock()
	mod := e.lastMod
	e.mu.RUnlock()
	s.origin.InjectPushEvent(push.Event{
		Kind: push.KindUpdate, Key: "/page", ModTime: mod,
		Body: []byte("v2"), HasBody: true, Digest: push.DigestOf([]byte("v2")),
	})
	if !waitFor(t, 2*time.Second, func() bool {
		return s.proxy.PushStats().Events >= 2
	}) {
		t.Fatal("duplicate never processed")
	}
	// Give the worker a beat, then confirm it neither polled nor
	// re-counted the apply.
	time.Sleep(100 * time.Millisecond)
	if got := s.origin.Polls(); got != pollsBefore {
		t.Errorf("duplicate cost %d polls", got-pollsBefore)
	}
	st := s.proxy.PushStats()
	if st.ValueApplied != appliedAfterFirst {
		t.Errorf("duplicate re-counted as an application: %d -> %d", appliedAfterFirst, st.ValueApplied)
	}
	if st.ValueFallbacks != 0 {
		t.Errorf("duplicate counted as a fallback: %+v", st)
	}
}
