// Package webproxy implements a live HTTP caching proxy that maintains
// Δt-consistency and mutual consistency for the objects it caches, using
// the same core policy state machines as the simulator. It is the paper's
// stated future work ("implement our techniques in the Squid proxy
// cache") realized as a self-contained Go proxy, shaped for production
// concurrency rather than a single-threaded demo.
//
// The architecture splits into three independent layers:
//
//   - A sharded object store (2^k shards, per-shard RWMutex, FNV-keyed;
//     see store.go). Cache hits touch only their own shard and share the
//     immutable body slice, so the hit path scales with parallelism
//     instead of serializing on a global lock.
//   - A min-heap refresh schedule (internal/sched) ordered by each
//     object's next poll instant, giving the dispatcher O(log n) access
//     to the next due refresh instead of an O(n) scan.
//   - A bounded pool of poll workers (Config.PollWorkers) that perform
//     the origin fetches (see refresh.go). Work is routed by the FNV
//     hash of the consistency group (or the cache key for ungrouped
//     objects), so MutualTimeController state stays effectively
//     single-threaded per group, and a slow origin stalls at most the
//     one worker its hash lands on — the other workers' objects keep
//     refreshing — instead of stalling the whole proxy as the previous
//     single-refresher design did.
//
// Cache misses are admitted through a singleflight group: N concurrent
// first requests for one object produce exactly one origin fetch. Cache
// keys include the canonicalized query string, so /stock?sym=A and
// /stock?sym=B are distinct objects; because that makes key cardinality
// client-controlled, residency is bounded by Config.MaxObjects and the
// Config.MaxBytes memory budget. Under the default EvictClock policy an
// admission beyond either budget reclaims residents by per-shard CLOCK
// (second-chance) replacement: hits mark an access bit with a lock-free
// atomic store, the sweep clears it, and mutual-consistency group
// members carry extra second chances so a group is not silently broken
// by evicting one member. An evicted object is fully unwound — removed
// from the refresh schedule (no ghost polls), detached from its group
// controller, and safe against a concurrent re-admission of the same
// key through the singleflight group. The legacy EvictRefuse policy
// instead refuses admission at capacity and serves over-budget objects
// uncached (X-Cache: BYPASS). Upstream failures back off exponentially
// (capped at the TTR upper bound) without disturbing the policy's
// learned TTR state.
//
// Refresh semantics are unchanged from the paper: each object polls the
// origin when its TTR expires using If-Modified-Since, consumes the
// modification-history extension when the origin provides it, and — for
// objects sharing a consistency group — triggers immediate polls of
// related objects when an update is detected, exactly as in §3.2.
//
// On top of that pull machinery the proxy can layer an origin-driven
// invalidation channel (Config.PushURL, wire protocol in internal/push):
// the origin streams per-object update events, each event converts into
// an immediate pushed poll through the affinity workers, and regular TTR
// polls stretch toward the upper bound (Config.PushStretch) while the
// channel is healthy — consistency traffic then scales with the origin's
// churn instead of with the poll schedule. The channel is an
// optimization, never a correctness dependency: on disconnect the proxy
// falls back to pure paper-mode polling and a staleness-bounded catch-up
// sweep restores every stretched schedule entry to its unstretched
// instant, so the Δt guarantee never silently widens (see push.go).
//
// Proxies compose into a hierarchy: Config.RelayEvents gives a proxy a
// downstream face (see relay.go) — its own event hub republishing every
// upstream invalidation and every locally confirmed update, served over
// the same /events protocol, with upstream holes propagated as
// mid-stream Resets — while conditional-GET answering and tolerance-
// directive forwarding let child proxies revalidate content against
// this one exactly as it revalidates against its origin. One origin
// stream and one origin poller then serve an arbitrarily wide edge
// fleet, and each hop's Δt guarantee degrades at worst to pure polling
// against its own upstream.
package webproxy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"broadway/internal/core"
	"broadway/internal/diskstore"
	"broadway/internal/httpx"
	"broadway/internal/push"
	"broadway/internal/sched"
	"broadway/internal/simtime"
	"broadway/internal/singleflight"
)

// Config parameterizes a Proxy.
type Config struct {
	// Origin is the base URL of the upstream server. Required.
	Origin *url.URL
	// Client performs upstream requests; defaults to a client with a
	// 10-second timeout.
	Client *http.Client
	// DefaultDelta is the Δt tolerance applied to objects whose origin
	// response carries no x-cc-delta directive. Defaults to one minute.
	DefaultDelta time.Duration
	// Bounds clamp the TTRs of all refresh policies. Min defaults to
	// the object's Δ, Max to 60 minutes.
	Bounds core.TTRBounds
	// Mode selects the mutual-consistency approach for grouped objects.
	// Defaults to TriggerAll.
	Mode core.TriggerMode
	// DefaultGroupDelta is δ for groups whose origin responses carry no
	// x-mc-delta directive. Defaults to DefaultDelta.
	DefaultGroupDelta time.Duration
	// Shards is the number of object-store shards, rounded up to a
	// power of two. Defaults to 64.
	Shards int
	// MaxObjects caps the number of cached objects. Under EvictClock an
	// admission beyond the cap evicts a resident selected by the CLOCK
	// sweep; under EvictRefuse requests beyond the cap are proxied
	// without being cached or scheduled for refresh. Either way a client
	// enumerating query strings cannot grow memory and origin poll load
	// without bound. Defaults to 65536; negative disables the cap.
	MaxObjects int
	// MaxBytes bounds the approximate resident memory of cached objects
	// (key + body + per-entry overhead). Admissions beyond the budget
	// evict residents under EvictClock and are served uncached under
	// EvictRefuse. EvictClock also re-enforces the budget when a
	// background refresh grows a cached body; EvictRefuse never evicts,
	// so grown bodies can hold the ledger over budget and further
	// admissions are refused until it shrinks. Zero or negative
	// disables the budget (the default).
	MaxBytes int64
	// Eviction selects the replacement policy applied when MaxObjects
	// or MaxBytes is exceeded. Defaults to EvictClock.
	Eviction EvictionPolicy
	// PollWorkers bounds the number of concurrent origin polls.
	// Defaults to GOMAXPROCS.
	PollWorkers int
	// Clock substitutes the time source. It may be offset from the real
	// clock but must advance at wall rate: the dispatcher computes
	// waits on this timeline and sleeps them in wall time. (Tests that
	// step a virtual clock instead must Kick the proxy after every
	// advance and wait for InFlightPolls to drain.)
	Clock func() time.Time
	// PushURL, when set, subscribes the proxy to an origin-driven
	// invalidation channel at that URL (the webserver's /events
	// endpoint) and enables hybrid push–pull consistency: pushed events
	// trigger immediate polls, regular polls stretch while the channel
	// is healthy, and a disconnect falls back to pure polling with a
	// catch-up sweep. Nil disables push (the default, pure paper mode).
	PushURL *url.URL
	// PushStretch multiplies regular TTRs while the push channel is
	// healthy, clamped to Bounds.Max. Values ≤ 1 disable stretching
	// (push then only adds immediacy, saving no poll traffic).
	// Zero means unset and defaults to 4 when PushURL is set. Objects
	// the channel can never announce — query-bearing cache keys (events
	// are path-granular) and keys too large for a wire frame — are
	// never stretched regardless.
	PushStretch float64
	// PushValues enables value-carrying push (wire protocol v2): the
	// subscriber negotiates payload delivery with its upstream, and a
	// pushed event carrying the object's new body is installed directly
	// — digest-verified, charged against the eviction byte ledger,
	// running the same §3.2 group triggering as a poll — with no origin
	// request at all. Any event that cannot be installed (digest
	// mismatch, missing or over-cap payload, byte-budget refusal) falls
	// back to today's pushed poll, so the Δ guarantee never depends on
	// the payload path. When the proxy relays (RelayEvents), its relay
	// hub also carries payloads downstream, so one origin message feeds
	// the whole subtree with zero confirmation polls.
	PushValues bool
	// PushPayloadCap bounds the payload size (bytes) the subscriber
	// requests and the relay hub carries. Zero defaults to
	// push.DefaultPayloadCap when PushValues is set.
	PushPayloadCap int
	// PushBackoffMin and PushBackoffMax bound the subscriber's
	// reconnect backoff (defaults 100ms and 10s).
	PushBackoffMin, PushBackoffMax time.Duration
	// PushHeartbeatTimeout declares the channel dead when no frame
	// arrives for this long; it must exceed the origin's heartbeat
	// interval. Defaults to 30s; negative disables the watchdog.
	PushHeartbeatTimeout time.Duration
	// PushInterest narrows the upstream subscription to a declared
	// interest set instead of the full event stream: on every
	// (re)connect the subscriber declares the union of PushPrefixes and
	// PushGroups, one path-segment prefix per resident object, and —
	// when relaying — every interest set its own downstream subscribers
	// have declared. The upstream hub then skips frames outside the
	// declaration, so an edge proxy caching a slice of the key space
	// pays fan-out for that slice only. An object admitted (or a child
	// connected) outside the current declaration bounces the stream to
	// renegotiate; until the wider declaration is live such objects keep
	// pure-polling freshness (see stretchTTR), so filtering never
	// widens a Δt bound. False (the default) subscribes to everything.
	PushInterest bool
	// PushPrefixes and PushGroups seed the declared interest set when
	// PushInterest is on: key prefixes and consistency groups this
	// proxy wants announced even before anything matching is resident.
	// With both empty and nothing resident the declaration is empty,
	// which the wire cannot express and therefore widens to match-all —
	// interest filtering fails open, never closed.
	PushPrefixes []string
	PushGroups   []string
	// RelayEvents, when true, gives the proxy a downstream face: it
	// republishes every upstream invalidation event and every locally
	// confirmed update into its own hub (own sequence space), served at
	// RelayPath over the same SSE protocol the origin speaks, so child
	// proxies subscribe to this proxy exactly as it subscribes to its
	// origin. An upstream disconnect or Reset propagates to children as
	// a mid-stream hello/Reset, driving their fallback sweeps (see
	// relay.go). Works with or without PushURL: a pure-polling parent
	// still relays the updates its own polls confirm.
	RelayEvents bool
	// RelayPath is the path the relayed event stream is served at
	// (default "/events"). Requests for it are handled by the relay hub
	// and never reach the cache or the origin.
	RelayPath string
	// RelayHeartbeat is the keepalive interval of relayed streams
	// (default 15s).
	RelayHeartbeat time.Duration
	// RelayReplay bounds the relay hub's replay ring (events kept for
	// child reconnect catch-up). Zero selects push.DefaultReplayLen.
	// Chaos tests shrink it to force resume-time Resets.
	RelayReplay int
	// RelaySubscriberBuffer is the relay hub's slow-consumer allowance:
	// a child stream whose proven position falls this many events
	// behind the head is terminated (it reconnects and resumes, or
	// Resets if the ring has moved on). Zero selects
	// push.DefaultSubscriberBuffer.
	RelaySubscriberBuffer int
	// PollObserver, when non-nil, is invoked after every successful
	// origin poll of a cached object (including the admission fetch).
	// It runs on the polling goroutine and must be fast and
	// concurrency-safe. The conformance tests use it to reconstruct
	// per-object refresh logs; production deployments would hang
	// metrics export off it.
	PollObserver func(PollObservation)
	// DiskDir, when set, enables the persistent disk tier (see disk.go
	// and internal/diskstore): every validated object is written behind
	// the in-memory store asynchronously, CLOCK victims demote to disk
	// instead of vanishing (promoted back through a validating fetch on
	// the next request), and a restart rehydrates the cache warm with
	// learned TTR state intact. Empty disables persistence (the
	// default).
	DiskDir string
	// DiskMaxBytes bounds the disk tier's blob bytes; the oldest-
	// validated records are dropped beyond it. Zero or negative means
	// unbounded.
	DiskMaxBytes int64
	// DiskGrace bounds how stale a rehydrated entry may be at startup
	// and still be served before its re-validation poll completes
	// (served marked X-Cache: GRACE, so the widened bound is explicit,
	// never silent). Records older than the grace window stay on disk
	// and are only served after a validating promote. Zero defaults to
	// 5 minutes; negative disables grace entirely — nothing is served
	// until validated, every record promotes on demand.
	DiskGrace time.Duration
}

// PollObservation describes one successful origin poll, as reported to
// Config.PollObserver.
type PollObservation struct {
	// Key is the object's canonical cache key.
	Key string
	// At is the validation instant on the proxy's clock.
	At time.Time
	// Modified reports whether the poll found a new version.
	Modified bool
	// Initial marks the admission fetch.
	Initial bool
	// Triggered marks polls requested by a mutual-consistency
	// controller.
	Triggered bool
	// Pushed marks polls requested by the invalidation channel.
	Pushed bool
	// Applied marks pushed events whose payload was installed directly,
	// with no origin request at all (Pushed is set too).
	Applied bool
	// Value and HasValue carry the parsed body of value-domain objects.
	Value    float64
	HasValue bool
}

// EvictionPolicy selects how the proxy reacts to an admission that would
// exceed Config.MaxObjects or Config.MaxBytes.
type EvictionPolicy int

const (
	// EvictClock (the default) reclaims residents by per-shard CLOCK
	// second-chance replacement with group-aware victim selection.
	EvictClock EvictionPolicy = iota
	// EvictRefuse is the legacy policy: at capacity new objects are
	// served uncached and never admitted.
	EvictRefuse
)

// String names the policy for flags and logs.
func (p EvictionPolicy) String() string {
	switch p {
	case EvictClock:
		return "clock"
	case EvictRefuse:
		return "refuse"
	default:
		return fmt.Sprintf("EvictionPolicy(%d)", int(p))
	}
}

// ParseEvictionPolicy maps a flag value ("clock" or "refuse") to its
// policy.
func ParseEvictionPolicy(s string) (EvictionPolicy, error) {
	switch s {
	case "clock":
		return EvictClock, nil
	case "refuse":
		return EvictRefuse, nil
	default:
		return 0, fmt.Errorf("webproxy: unknown eviction policy %q (want clock or refuse)", s)
	}
}

// entry is one cached object.
type entry struct {
	key   string // canonical cache key: path plus sorted query
	group string

	// mu guards the mutable data fields below. The policy runs only on
	// the entry's affinity worker (or, for a partitioned M_v pair, the
	// group's worker), but pairing at admission can swap it, so it is
	// guarded too.
	mu     sync.RWMutex
	policy core.Policy

	body []byte // replaced wholesale on refresh, never mutated
	// bodyDigest is push.DigestOf(body), maintained alongside every
	// body swap when value-carrying push is on (empty otherwise, and on
	// entries admitted before a digest was needed — readers fall back
	// to hashing the body). It is what the delta rung compares a pushed
	// frame's base digest against, and what the subscriber advertises
	// as held on connect.
	bodyDigest  string
	contentType string
	// cacheControl is the origin's Cache-Control header, forwarded on
	// responses so child proxies learn the same tolerance directives.
	cacheControl string
	lastMod      time.Time
	hasLastMod   bool
	validatedAt  time.Time
	failures     int // consecutive upstream failures

	// Value-domain objects (origin advertised x-cc-vdelta): the body is
	// parsed as a decimal value and the entry runs an AdaptiveTTR
	// policy over it. valueDelta is the advertised Δv, immutable after
	// admission (leaveGroup rebuilds a widowed partner's individual
	// policy from it).
	isValue    bool
	value      float64
	valueDelta float64
	// paired marks a value entry whose policy belongs to a
	// MutualValuePartitioned pair (M_v consistency, §4.2). partner
	// links the two halves of the pair and is guarded by the group's
	// mu (pairing and unpairing both run under it).
	paired  bool
	partner *entry

	// nextAt, baseNextAt, and item are guarded by the proxy's schedMu.
	// nextAt is the scheduled poll instant (possibly stretched while the
	// push channel is healthy); baseNextAt is the instant pure
	// paper-mode polling would have used, which the fallback sweep
	// restores when the channel dies.
	nextAt     time.Time
	baseNextAt time.Time
	item       *sched.Item

	// Replacement state. size is the resident bytes charged to the
	// store's ledger (re-charged on refresh under the shard lock).
	// ringIdx and lives (remaining extra second chances; group members
	// start with groupLives) are guarded by the owning shard's mutex.
	// evicted is the cancellation token: set under the shard lock when
	// the entry leaves the store, it stops future reschedules and
	// in-flight polls from resurrecting the object.
	size    atomic.Int64
	ringIdx int
	lives   int
	evicted atomic.Bool
	// capped marks an entry served uncached because admission was
	// refused at capacity (EvictRefuse) or the object alone overflows
	// MaxBytes.
	capped bool

	polls     atomic.Uint64
	triggered atomic.Uint64
	pushed    atomic.Uint64
	applied   atomic.Uint64
	hits      atomic.Uint64
	// pushQueued coalesces a burst of pushed events into one queued
	// job: set when a pushed job is enqueued, cleared when it starts.
	// pendingPush holds the newest pushed event for that job — updated
	// on every event, payload and all, so a coalesced burst applies the
	// LATEST body rather than the first (installing a stale payload
	// after dropping its successors would serve old data as fresh).
	pushQueued  atomic.Bool
	pendingPush atomic.Pointer[push.Event]
	// unpushable marks an object whose key cannot fit an invalidation
	// frame: the origin will never announce its updates, so its TTRs
	// are never stretched. Immutable after admission.
	unpushable bool
	// delta and groupDelta are the resolved Δ/δ tolerances the entry
	// was admitted with (config defaults overlaid by origin
	// directives), snapshotted here so the disk tier can persist and
	// restore them. Immutable after admission.
	delta      time.Duration
	groupDelta time.Duration
	// suspect marks a rehydrated entry not yet re-validated against the
	// origin in this process lifetime: hits serve it as X-Cache: GRACE
	// until its validation poll clears the mark, so the Δt bound never
	// widens silently across a restart.
	suspect atomic.Bool
	// refbit is the CLOCK access bit, marked lock-free on hits (see
	// markAccessed) and consumed by the victim sweep. It sits next to
	// hits so a hit that does write it touches the cache line the hit
	// counter already owns.
	refbit atomic.Bool
}

// markAccessed sets the CLOCK access bit. Steady-state hits find the bit
// already set and stay read-only — no lock and no extra contended
// cache-line write on the hit path; only the first hit after a sweep
// cleared the bit (or after admission) pays the store.
func (e *entry) markAccessed() {
	if !e.refbit.Load() {
		e.refbit.Store(true)
	}
}

// groupState is the serialization domain of one consistency group: the
// shared controller plus the member list, guarded by mu. dead marks a
// state whose last member was evicted and which has been deleted from
// the proxy's group map — a racing joinGroup that still holds the stale
// pointer must retry rather than populate the orphan (grouped-key churn
// would otherwise leak one groupState per retired group name).
type groupState struct {
	mu      sync.Mutex
	ctrl    *core.MutualTimeController
	members []*entry
	dead    bool
}

// Proxy is a live caching HTTP proxy. Construct with New, then Start the
// refresher; Close releases it.
type Proxy struct {
	cfg   Config
	epoch time.Time

	store  *store
	flight singleflight.Group

	groupMu sync.RWMutex
	groups  map[string]*groupState

	schedMu  sync.Mutex
	schedule sched.Heap

	workers []*worker
	wake    chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup

	// pending counts refresh jobs that are dispatched, queued, or in
	// flight but not yet completed. Together with NextRefreshAt it lets
	// an external clock driver detect quiescence.
	pending atomic.Int64

	// Downstream event relay (see relay.go); nil unless
	// Config.RelayEvents.
	relay *push.Hub

	// Invalidation-channel state (see push.go). sub is nil when push is
	// disabled.
	sub           *push.Subscriber
	pushCancel    context.CancelFunc
	pushHealthy   atomic.Bool
	pushEvents    atomic.Uint64
	pushPolls     atomic.Uint64
	pushDropped   atomic.Uint64
	pushFallbacks atomic.Uint64
	pushSeq       atomic.Uint64
	// pushApplied counts pushed payloads installed directly (no origin
	// request); pushValueFallback counts pushed jobs that had to poll
	// after all — digest mismatch, missing or stripped payload, or a
	// byte-budget refusal — while value application was enabled.
	pushApplied       atomic.Uint64
	pushValueFallback atomic.Uint64
	// Delta-ladder counters: pushDeltaApplied counts pushed deltas
	// reconstructed and installed (resident or disk tier);
	// pushDeltaBaseMiss counts deltas refused because the advertised
	// base did not match the body actually held (each one degraded down
	// the ladder — full payload or confirmation poll — never installed
	// blind); pushDeltaRebased counts relay publications that carried a
	// delta form downstream (reused or locally computed);
	// pushDiskApplied counts pushed payloads applied straight to a
	// demoted object's disk record while nothing was resident.
	pushDeltaApplied  atomic.Uint64
	pushDeltaBaseMiss atomic.Uint64
	pushDeltaRebased  atomic.Uint64
	pushDiskApplied   atomic.Uint64
	// toleranceOverrides counts runtime Δ/Δv changes applied through
	// OverrideTolerance (the /admin/tolerance action).
	toleranceOverrides atomic.Uint64
	// downstream is the sticky union of every interest set a downstream
	// subscriber has declared against the relay hub (see
	// noteDownstreamInterest); folded into this proxy's own upstream
	// declaration when PushInterest is on. Sticky by design: a child
	// that drops and resumes re-declares the same slice, and keeping a
	// departed child's terms only costs extra frames, never correctness.
	downMu     sync.Mutex
	downstream push.InterestSet

	// Persistent disk tier (see disk.go); nil unless Config.DiskDir.
	disk            *diskstore.Store
	diskDemotions   atomic.Uint64
	diskPromotions  atomic.Uint64
	diskRehydrated  atomic.Uint64
	diskGraceServes atomic.Uint64

	// Expvar-style cache counters. Misses, evictions, and capped
	// admissions are counted on the (cold) admission/eviction paths
	// only; the hit path stays free of shared counters so it gains no
	// contended cache line (per-entry hits are summed on demand).
	misses    atomic.Uint64
	evictions atomic.Uint64
	cappedN   atomic.Uint64

	// Upstream-health state (see UpstreamStatus): written on the cold
	// fetch path only, read by /healthz and /metrics scrapes.
	upMu              sync.Mutex
	upstreamErrs      uint64
	lastUpstreamErr   string
	lastUpstreamErrAt time.Time
	lastUpstreamOKAt  time.Time

	lifeMu  sync.Mutex
	started bool
	closed  bool
}

var _ http.Handler = (*Proxy)(nil)

// New validates the configuration and returns a proxy. Call Start to
// launch the background refresher.
func New(cfg Config) (*Proxy, error) {
	if cfg.Origin == nil {
		return nil, errors.New("webproxy: Config.Origin is required")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.DefaultDelta <= 0 {
		cfg.DefaultDelta = time.Minute
	}
	if cfg.Mode == 0 {
		cfg.Mode = core.TriggerAll
	}
	if cfg.DefaultGroupDelta <= 0 {
		cfg.DefaultGroupDelta = cfg.DefaultDelta
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 64
	}
	// Cap before rounding: beyond this sharding buys nothing, and an
	// absurd value would overflow nextPow2 and the uint32 shard mask.
	if cfg.Shards > maxShards {
		cfg.Shards = maxShards
	}
	cfg.Shards = nextPow2(cfg.Shards)
	if cfg.PollWorkers <= 0 {
		cfg.PollWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxObjects == 0 {
		cfg.MaxObjects = 1 << 16
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = -1 // unlimited
	}
	switch cfg.Eviction {
	case EvictClock, EvictRefuse:
	default:
		return nil, fmt.Errorf("webproxy: invalid Config.Eviction %d", int(cfg.Eviction))
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.PushURL != nil && cfg.PushStretch == 0 {
		cfg.PushStretch = 4
	}
	if cfg.PushValues && cfg.PushPayloadCap <= 0 {
		cfg.PushPayloadCap = push.DefaultPayloadCap
	}
	if cfg.PushPayloadCap > push.MaxPayloadCap {
		cfg.PushPayloadCap = push.MaxPayloadCap
	}
	if cfg.RelayPath == "" {
		cfg.RelayPath = "/events"
	}
	if cfg.DiskGrace == 0 {
		cfg.DiskGrace = 5 * time.Minute
	}
	p := &Proxy{
		cfg:     cfg,
		epoch:   cfg.Clock(),
		store:   newStore(cfg.Shards),
		groups:  make(map[string]*groupState),
		workers: make([]*worker, cfg.PollWorkers),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	for i := range p.workers {
		p.workers[i] = &worker{wake: make(chan struct{}, 1)}
	}
	if cfg.RelayEvents {
		hubCfg := push.HubConfig{
			Heartbeat:        cfg.RelayHeartbeat,
			ReplayLen:        cfg.RelayReplay,
			SubscriberBuffer: cfg.RelaySubscriberBuffer,
		}
		if cfg.PushValues {
			// The relay carries payloads downstream at the same cap the
			// proxy negotiates upstream, so one origin message feeds the
			// whole subtree. Leaves that did not ask for payloads get
			// invalidation-only frames (per-stream negotiation), and
			// bodies over a leaf's cap are chunked at it rather than
			// degraded straight to an invalidation.
			hubCfg.PayloadCap = cfg.PushPayloadCap
			hubCfg.ChunkPayload = cfg.PushPayloadCap
		}
		if cfg.PushInterest && cfg.PushURL != nil {
			// Every downstream declaration folds into this proxy's own
			// upstream interest, widening it (with a stream bounce) when
			// a child wants a slice the current subscription filters out.
			hubCfg.OnSubscribe = p.noteDownstreamInterest
		}
		p.relay = push.NewHub(hubCfg)
	}
	if cfg.PushURL != nil {
		sub, err := p.newPushSubscriber()
		if err != nil {
			return nil, err
		}
		p.sub = sub
	}
	if cfg.DiskDir != "" {
		ds, err := diskstore.Open(cfg.DiskDir, cfg.DiskMaxBytes)
		if err != nil {
			return nil, err
		}
		p.disk = ds
		// Rehydrate before Start: entries land in the store and their
		// validation polls land on the schedule heap, drained by the
		// worker pool once Start runs — so a restart cannot self-herd
		// the origin any harder than PollWorkers allows.
		p.rehydrate()
	}
	return p, nil
}

// Start launches the refresh dispatcher and the poll worker pool. It is
// idempotent.
func (p *Proxy) Start() {
	p.lifeMu.Lock()
	defer p.lifeMu.Unlock()
	if p.started || p.closed {
		return
	}
	p.started = true
	p.wg.Add(1 + len(p.workers))
	go p.dispatchLoop()
	for _, w := range p.workers {
		go p.workerLoop(w)
	}
	if p.sub != nil {
		ctx, cancel := context.WithCancel(context.Background())
		p.pushCancel = cancel
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.sub.Run(ctx)
		}()
	}
}

// Close stops the refresher and waits for it to exit. The proxy continues
// to serve cached (now unrefreshed) content afterwards.
func (p *Proxy) Close() {
	p.lifeMu.Lock()
	if p.closed {
		p.lifeMu.Unlock()
		return
	}
	p.closed = true
	started := p.started
	cancel := p.pushCancel
	p.lifeMu.Unlock()
	close(p.done)
	if cancel != nil {
		cancel()
	}
	if p.relay != nil {
		// A closed proxy will never publish again, but its relay hub
		// would keep heartbeating connected children — leaving their
		// stretched TTR schedules backed by a channel that can no
		// longer announce anything. Announce the hole to anyone still
		// listening, then drop every stream and refuse new ones: the
		// children fall back to paper-mode polling either way.
		p.relay.Reset()
		p.relay.SetAvailable(false)
	}
	if started {
		p.wg.Wait()
	}
	if p.disk != nil {
		// After wg.Wait no refresh path can enqueue more writes; drain
		// the write-behind queue so the journal is complete on exit.
		p.disk.Close()
	}
}

// canonicalKey maps a request URL to its cache key: the escaped path,
// plus the query string re-encoded with sorted parameters so that
// permutations of the same query share one cached object. The escaped
// path keeps an encoded '?' (%3F) in path data from masquerading as a
// query separator when the key is split again in fetch.
func canonicalKey(u *url.URL) string {
	path := u.EscapedPath()
	if u.RawQuery == "" {
		return path
	}
	q := canonicalQuery(u.RawQuery)
	if q == "" {
		return path
	}
	return path + "?" + q
}

// canonicalQuery sorts well-formed queries into a canonical encoding.
// A query that does not survive a parse/encode round trip (malformed
// escapes, stray semicolons) is kept verbatim: collapsing it would drop
// parameters from the upstream fetch and alias distinct client URLs.
func canonicalQuery(rawQuery string) string {
	q, err := url.ParseQuery(rawQuery)
	if err != nil {
		return rawQuery
	}
	return q.Encode() // Encode sorts parameters by key
}

// ServeHTTP serves cache hits locally and fills misses from the origin.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.relay != nil && r.URL.Path == p.cfg.RelayPath {
		// The downstream event stream: child proxies subscribe here.
		// The relay path shadows any upstream object of the same name.
		p.relay.ServeHTTP(w, r)
		return
	}
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		// RFC 9110 §15.5.6: a 405 must name the methods the resource
		// supports. HEAD is served from the cached entry's headers with
		// no body, exactly like the 304 face.
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	key := canonicalKey(r.URL)

	if e := p.store.get(key); e != nil {
		e.hits.Add(1)
		e.markAccessed()
		p.serveEntry(w, r, e, "HIT")
		return
	}

	// Singleflight admission: concurrent first requests for one key
	// share a single origin fetch.
	p.misses.Add(1)
	v, err, _ := p.flight.Do(key, func() (any, error) { return p.admit(key) })
	if err != nil {
		// The raw error names upstream hosts and transport details —
		// operator data, not client data. Clients get a generic 502;
		// the detail is retained in UpstreamStatus for /healthz and
		// the upstream-error counter for /metrics.
		http.Error(w, "upstream fetch failed", http.StatusBadGateway)
		return
	}
	e := v.(*entry)
	status := "MISS"
	if e.capped {
		status = "BYPASS" // served, but refused residency at capacity
	}
	p.serveEntry(w, r, e, status)
}

// serveEntry writes e's current cached representation. The body slice is
// shared, not copied: refreshes replace it wholesale and never mutate it
// in place. A conditional request (If-Modified-Since at or beyond the
// cached Last-Modified) is answered 304 with no body — that is how a
// child proxy in a hierarchy revalidates against this one without
// re-downloading, exactly as this proxy revalidates against its origin.
func (p *Proxy) serveEntry(w http.ResponseWriter, r *http.Request, e *entry, cacheStatus string) {
	if cacheStatus == "HIT" && e.suspect.Load() {
		// A rehydrated copy awaiting its re-validation poll: served, but
		// labeled — the client sees that the staleness bound is the
		// configured grace window, not Δ (see Config.DiskGrace).
		cacheStatus = "GRACE"
		p.diskGraceServes.Add(1)
	}
	e.mu.RLock()
	body := e.body
	contentType := e.contentType
	cacheControl := e.cacheControl
	lastMod, hasLastMod := e.lastMod, e.hasLastMod
	e.mu.RUnlock()
	if hasLastMod {
		if ims := r.Header.Get("If-Modified-Since"); ims != "" {
			if since, err := http.ParseTime(ims); err == nil && !lastMod.After(since) {
				setObjectHeaders(w, "", cacheControl, lastMod, true, cacheStatus)
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
	}
	writeObject(w, r, body, contentType, cacheControl, lastMod, hasLastMod, cacheStatus)
}

// setObjectHeaders writes the response headers shared by 200 and 304
// replies. The origin's Cache-Control (carrying the paper's §5.1
// tolerance directives: Δ, group, δ, Δv) is forwarded verbatim so a
// child proxy learns the same consistency parameters this proxy did.
func setObjectHeaders(w http.ResponseWriter, contentType, cacheControl string, lastMod time.Time, hasLastMod bool, cacheStatus string) {
	if contentType != "" {
		w.Header().Set("Content-Type", contentType)
	}
	if cacheControl != "" {
		w.Header().Set("Cache-Control", cacheControl)
	}
	if hasLastMod {
		w.Header().Set("Last-Modified", lastMod.UTC().Format(http.TimeFormat))
	}
	w.Header().Set("X-Cache", cacheStatus)
}

func writeObject(w http.ResponseWriter, r *http.Request, body []byte, contentType, cacheControl string, lastMod time.Time, hasLastMod bool, cacheStatus string) {
	setObjectHeaders(w, contentType, cacheControl, lastMod, hasLastMod, cacheStatus)
	if r.Method == http.MethodHead {
		// HEAD gets the representation's headers — Content-Length
		// included, which net/http cannot infer with no body written —
		// and nothing else.
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(http.StatusOK)
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// admit fetches the object for the first time and registers it with the
// refresher. Callers serialize per key through the singleflight group.
func (p *Proxy) admit(key string) (*entry, error) {
	if e := p.store.get(key); e != nil {
		return e, nil
	}
	if p.disk != nil {
		if rec, body, ok := p.disk.Get(key); ok {
			// Demoted to disk earlier (or left beyond the grace window at
			// startup): promote through a validating conditional fetch.
			// Running inside the singleflight group guards the
			// re-admission race — one promote per key, concurrent
			// requesters share it.
			return p.promote(key, rec, body)
		}
	}
	resp, err := p.fetch(key, time.Time{})
	if err != nil {
		return nil, err
	}

	now := p.cfg.Clock()
	a := admission{
		body:         resp.body,
		contentType:  resp.contentType,
		cacheControl: resp.header.Get("Cache-Control"),
		lastMod:      resp.lastMod,
		hasLastMod:   resp.hasLastMod,
		validatedAt:  now,
		delta:        p.cfg.DefaultDelta,
		groupDelta:   p.cfg.DefaultGroupDelta,
		initialPoll:  true,
	}
	if tol, err := httpx.TolerancesFrom(resp.header); err == nil {
		if tol.Delta > 0 {
			a.delta = tol.Delta
		}
		if tol.GroupDelta > 0 {
			a.groupDelta = tol.GroupDelta
		}
		a.valueDelta = tol.ValueDelta
		a.group = tol.Group
	}

	// Parsed from the local body slice, not the published entry: a
	// pushed or triggered poll can mutate e.value the moment the entry
	// is visible, and the observer call below must not race it.
	var admittedValue float64
	var admittedHasValue bool
	if v, ok := parseValueBody(a.body); ok && a.valueDelta > 0 {
		admittedValue, admittedHasValue = v, true
	}

	e, inserted := p.installEntry(key, a)
	if !inserted {
		return e, nil
	}
	p.persistEntry(e)
	if obs := p.cfg.PollObserver; obs != nil {
		obs(PollObservation{
			Key: key, At: now, Modified: true, Initial: true,
			Value: admittedValue, HasValue: admittedHasValue,
		})
	}
	return e, nil
}

// admission carries everything installEntry needs to build and register
// a cache entry. Three paths feed it: a first-contact origin fetch
// (admit), a disk-tier promote (validating conditional fetch), and a
// startup rehydration (no fetch at all — the entry is born suspect).
type admission struct {
	body         []byte
	contentType  string
	cacheControl string
	lastMod      time.Time
	hasLastMod   bool
	validatedAt  time.Time
	delta        time.Duration
	groupDelta   time.Duration
	valueDelta   float64
	group        string
	// restoreTTR re-seeds the refresh policy's learned TTR (clamped to
	// Bounds); zero learns from scratch at InitialTTR.
	restoreTTR time.Duration
	// suspect marks a rehydrated entry awaiting re-validation.
	suspect bool
	// initialPoll counts the admission fetch in the entry's poll stats
	// (false for rehydration, which performed no fetch).
	initialPoll bool
	// scheduleAt overrides the first refresh instant; zero schedules
	// the policy's TTR after validatedAt.
	scheduleAt time.Time
}

// installEntry builds the entry and registers it with the store, its
// consistency group, and the refresh schedule. It reports whether the
// entry was inserted: false means capped (e.capped set, served
// uncached) or lost to a concurrent admission (the resident entry is
// returned instead).
func (p *Proxy) installEntry(key string, a admission) (*entry, bool) {
	e := &entry{
		key:          key,
		group:        a.group,
		body:         a.body,
		contentType:  a.contentType,
		cacheControl: a.cacheControl,
		lastMod:      a.lastMod,
		hasLastMod:   a.hasLastMod,
		validatedAt:  a.validatedAt,
		delta:        a.delta,
		groupDelta:   a.groupDelta,
	}
	e.suspect.Store(a.suspect)
	if p.cfg.PushValues {
		e.bodyDigest = push.DigestOf(a.body)
	}
	if p.sub != nil {
		// An object the channel can never announce must not have its
		// TTRs stretched — the object keeps pure-polling freshness
		// instead (see eventKeyResolvesTo).
		e.unpushable = !p.eventKeyResolvesTo(key) ||
			push.Event{Kind: push.KindUpdate, Key: key, Group: a.group}.Oversized()
	}
	if a.initialPoll {
		e.polls.Store(1)
	}
	// An origin advertising a Δv tolerance with a numeric body selects
	// value-domain consistency (§4.1); everything else runs LIMD.
	if v, ok := parseValueBody(a.body); ok && a.valueDelta > 0 {
		e.isValue = true
		e.value = v
		e.valueDelta = a.valueDelta
		e.policy = core.NewAdaptiveTTR(core.AdaptiveTTRConfig{
			Delta:  a.valueDelta,
			Bounds: p.cfg.Bounds,
		})
	} else {
		e.policy = core.NewLIMD(core.LIMDConfig{Delta: a.delta, Bounds: p.cfg.Bounds})
	}
	if a.restoreTTR > 0 {
		if r, ok := e.policy.(interface{ RestoreTTR(time.Duration) }); ok {
			r.RestoreTTR(a.restoreTTR)
		}
	}

	e.size.Store(entrySize(key, a.body))
	actual, inserted, victims, capped := p.store.put(key, e, p.cfg.MaxObjects, p.cfg.MaxBytes, p.cfg.Eviction == EvictClock)
	if capped {
		// The object is served but not admitted: no store entry, no
		// refresh schedule. The next request proxies again.
		e.capped = true
		p.cappedN.Add(1)
		return e, false
	}
	if !inserted {
		return actual, false
	}
	// Unwind the victims the admission displaced before scheduling the
	// newcomer, so their refresh slots are gone by the time ours exists.
	p.demote(victims)
	if a.group != "" {
		p.joinGroup(e, a.group, a.groupDelta, a.valueDelta)
	}
	if p.sub != nil && p.cfg.PushInterest && !e.unpushable &&
		!p.sub.DeclaredInterest().Matches(key, a.group) {
		// The upstream declaration predates this object: its updates
		// are filtered away before they ever reach us. Bounce the
		// stream — the reconnect re-runs the interest closure with this
		// resident included — while the stretch gate keeps the object
		// on pure-polling freshness until the wider declaration is
		// live, so the window never widens its Δt bound.
		p.sub.Bounce()
	}

	at := a.scheduleAt
	if at.IsZero() {
		e.mu.RLock()
		ttr := e.policy.InitialTTR()
		if t, ok := e.policy.(interface{ TTR() time.Duration }); ok && a.restoreTTR > 0 {
			ttr = t.TTR() // restored schedule, not a cold restart at TTRmin
		}
		e.mu.RUnlock()
		at = a.validatedAt.Add(ttr)
	}
	p.reschedule(e, at)
	return e, true
}

// unwind finishes an eviction: each victim — already removed from the
// store and marked with its cancellation token — is descheduled from
// the refresh heap and detached from its consistency group, so no
// ghost poll ever reaches the origin on its behalf. A concurrent
// re-admission of the same key runs through the singleflight group and
// builds a fresh entry; it never observes the victim.
func (p *Proxy) unwind(victims []*entry) {
	for _, v := range victims {
		p.evictions.Add(1)
		p.unschedule(v)
		p.leaveGroup(v)
	}
}

// Evict removes key from the cache immediately (admin eviction): the
// object is descheduled from the refresh heap, detached from its group,
// and — unlike a replacement victim, which demotes — purged from the
// disk tier too. It reports whether an object was resident in either
// tier, so an operator can tell a real eviction from a typo.
func (p *Proxy) Evict(key string) bool {
	evicted := false
	if e := p.lookup(key); e != nil && p.store.removeEntry(e) {
		p.unwind([]*entry{e})
		evicted = true
	}
	if p.disk != nil {
		ck := key
		if u, err := url.Parse(key); err == nil {
			ck = canonicalKey(u)
		}
		if p.disk.Delete(ck) {
			evicted = true
		}
	}
	return evicted
}

// joinGroup registers e with its consistency group, pairing two
// value-domain members under a partitioned M_v controller (§4.2): the
// mutual tolerance δ is split across the pair in inverse proportion to
// their change rates. The reduction applies to the difference function
// and pairs only; further value members of the group keep individual
// policies.
func (p *Proxy) joinGroup(e *entry, group string, groupDelta time.Duration, valueDelta float64) {
	// Retry when the state died between lookup and lock: leaveGroup
	// retires a group whose last member was evicted, and a fresh state
	// replaces it in the map on the next lookup.
	var gs *groupState
	for {
		gs = p.groupStateOrCreate(group, groupDelta)
		gs.mu.Lock()
		if !gs.dead {
			break
		}
		gs.mu.Unlock()
	}
	defer gs.mu.Unlock()
	// A concurrent admission can evict e before it joins its group. The
	// eviction sets the token before leaveGroup takes gs.mu, so checking
	// it under gs.mu guarantees an evicted entry is never added to the
	// member list after leaveGroup has run (no membership leak).
	if e.evicted.Load() {
		return
	}
	if e.isValue && valueDelta > 0 {
		for _, other := range gs.members {
			if !other.isValue {
				continue
			}
			other.mu.Lock()
			if other.paired {
				other.mu.Unlock()
				continue
			}
			pair := core.NewMutualValuePartitioned(core.MutualValueConfig{
				Delta:  valueDelta,
				Bounds: p.cfg.Bounds,
			})
			other.policy = pair.PolicyA()
			other.paired = true
			other.mu.Unlock()
			e.mu.Lock()
			e.policy = pair.PolicyB()
			e.paired = true
			e.mu.Unlock()
			e.partner = other
			other.partner = e
			break
		}
	}
	gs.members = append(gs.members, e)
}

// upstreamResponse is the distilled result of one origin poll.
type upstreamResponse struct {
	notModified bool
	body        []byte
	contentType string
	lastMod     time.Time
	hasLastMod  bool
	history     []time.Time
	header      http.Header
}

// fetch performs one upstream request and records its outcome in the
// proxy's upstream-health state: every origin interaction — admission
// fetches, scheduled polls, triggered and pushed polls — flows through
// here, so UpstreamStatus always reflects the most recent contact.
func (p *Proxy) fetch(key string, since time.Time) (*upstreamResponse, error) {
	resp, err := p.fetchUpstream(key, since)
	now := p.cfg.Clock()
	p.upMu.Lock()
	if err != nil {
		p.upstreamErrs++
		p.lastUpstreamErr = err.Error()
		p.lastUpstreamErrAt = now
	} else {
		p.lastUpstreamOKAt = now
	}
	p.upMu.Unlock()
	return resp, err
}

// UpstreamStatus reports the proxy's most recent origin contact: the
// error counter feeding broadway_upstream_errors_total, and the last
// error's detail — kept here, off the client-facing 502 body, for
// /healthz to surface to operators.
type UpstreamStatus struct {
	// Errors counts failed upstream requests (transport errors and
	// non-200/304 statuses), across every fetch path.
	Errors uint64
	// LastError is the most recent failure's detail ("" before any).
	LastError string
	// LastErrorAt and LastOKAt are the instants of the most recent
	// failed and successful upstream requests (zero before any). The
	// upstream is considered reachable while LastOKAt >= LastErrorAt.
	LastErrorAt time.Time
	LastOKAt    time.Time
}

// UpstreamStatus returns the most recent upstream fetch outcomes.
func (p *Proxy) UpstreamStatus() UpstreamStatus {
	p.upMu.Lock()
	defer p.upMu.Unlock()
	return UpstreamStatus{
		Errors:      p.upstreamErrs,
		LastError:   p.lastUpstreamErr,
		LastErrorAt: p.lastUpstreamErrAt,
		LastOKAt:    p.lastUpstreamOKAt,
	}
}

// fetchUpstream performs a GET against the origin, conditional when
// since is non-zero. key carries the canonical path-plus-query, which is
// replayed onto the upstream URL.
func (p *Proxy) fetchUpstream(key string, since time.Time) (*upstreamResponse, error) {
	u := *p.cfg.Origin
	escPath, rawQuery := key, ""
	if i := strings.IndexByte(key, '?'); i >= 0 {
		escPath, rawQuery = key[:i], key[i+1:]
	}
	// The key carries the *escaped* path (see canonicalKey); decode it
	// for u.Path and keep the escaped form in u.RawPath so the upstream
	// URL preserves the client's encoding exactly.
	if unescaped, err := url.PathUnescape(escPath); err == nil {
		u.Path = unescaped
	} else {
		u.Path = escPath
	}
	u.RawPath = escPath
	u.RawQuery = rawQuery
	req, err := http.NewRequest(http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, err
	}
	if !since.IsZero() {
		req.Header.Set("If-Modified-Since", since.UTC().Format(http.TimeFormat))
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	out := &upstreamResponse{header: resp.Header}
	if lm := resp.Header.Get("Last-Modified"); lm != "" {
		if t, err := http.ParseTime(lm); err == nil {
			out.lastMod = t
			out.hasLastMod = true
		}
	}
	if hist, err := httpx.HistoryFrom(resp.Header); err == nil {
		out.history = hist
	}
	switch resp.StatusCode {
	case http.StatusNotModified:
		out.notModified = true
		return out, nil
	case http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
		if err != nil {
			return nil, err
		}
		out.body = body
		out.contentType = resp.Header.Get("Content-Type")
		return out, nil
	default:
		return nil, fmt.Errorf("webproxy: origin returned %s", resp.Status)
	}
}

// parseValueBody interprets a response body as a decimal value (e.g. a
// stock quote feed serving "165.38\n").
func parseValueBody(body []byte) (float64, bool) {
	s := strings.TrimSpace(string(body))
	if s == "" || len(s) > 64 {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// toSim maps wall-clock time onto the simulated timeline the core
// policies operate in (nanoseconds since the proxy's epoch).
func (p *Proxy) toSim(t time.Time) simtime.Time {
	if t.IsZero() {
		return 0
	}
	return simtime.At(t.Sub(p.epoch))
}

// Stats reports cache activity for one object.
type Stats struct {
	Polls     uint64
	Triggered uint64
	// Pushed counts polls requested by the invalidation channel.
	Pushed uint64
	// Applied counts pushed payloads installed directly, with no origin
	// request (not included in Polls or Pushed — nothing was polled).
	Applied uint64
	Hits    uint64
	// Bytes is the resident size charged to the byte ledger.
	Bytes  int64
	Cached bool
	// Grouped reports whether the object belongs to a mutual-consistency
	// group (and is therefore penalized as an eviction victim).
	Grouped bool
}

// CacheStats aggregates proxy-wide cache activity, expvar-style.
type CacheStats struct {
	// Hits counts cache hits on currently resident objects (an evicted
	// object's hits leave the total with it).
	Hits uint64
	// Misses counts requests that entered the admission path.
	Misses uint64
	// Evictions counts objects displaced by replacement or Evict.
	Evictions uint64
	// Capped counts admissions refused residency: over-budget objects
	// under EvictRefuse, or single objects larger than MaxBytes.
	Capped uint64
	// ResidentObjects and ResidentBytes are the current store footprint.
	ResidentObjects int
	ResidentBytes   int64
	// UpstreamErrors counts failed upstream fetches (all paths); the
	// last error's detail is on UpstreamStatus, not here and never on
	// a client-facing response body.
	UpstreamErrors uint64
	// PushConnected reports whether the invalidation channel is healthy.
	PushConnected bool
	// PushEvents counts update notifications received on the channel.
	PushEvents uint64
	// PushPolls counts pushed polls the channel converted events into.
	PushPolls uint64
	// PushFallbacks counts healthy→disconnected transitions, each of
	// which ran a staleness-bounded catch-up sweep.
	PushFallbacks uint64
	// ToleranceOverrides counts runtime Δ/Δv changes applied through
	// the /admin/tolerance action (see OverrideTolerance).
	ToleranceOverrides uint64
}

// CacheStats returns the proxy-wide cache counters. Hits is summed over
// resident entries, so it is consistent with ResidentObjects rather
// than with all-time traffic.
func (p *Proxy) CacheStats() CacheStats {
	cs := CacheStats{
		Misses:          p.misses.Load(),
		Evictions:       p.evictions.Load(),
		Capped:          p.cappedN.Load(),
		ResidentObjects: p.store.len(),
		ResidentBytes:   p.store.residentBytes(),
		UpstreamErrors:  p.UpstreamStatus().Errors,
		PushConnected:   p.pushHealthy.Load(),
		PushEvents:      p.pushEvents.Load(),
		PushPolls:       p.pushPolls.Load(),
		PushFallbacks:   p.pushFallbacks.Load(),

		ToleranceOverrides: p.toleranceOverrides.Load(),
	}
	for i := range p.store.shards {
		sh := &p.store.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			cs.Hits += e.hits.Load()
		}
		sh.mu.RUnlock()
	}
	return cs
}

// lookup finds the entry for a caller-supplied key, canonicalizing it
// the same way ServeHTTP does when the verbatim form misses (so
// "/stock?b=2&a=1" finds the object cached under "/stock?a=1&b=2").
func (p *Proxy) lookup(key string) *entry {
	if e := p.store.get(key); e != nil {
		return e
	}
	if u, err := url.Parse(key); err == nil {
		if ck := canonicalKey(u); ck != key {
			return p.store.get(ck)
		}
	}
	return nil
}

// ObjectStats returns the stats for key (a path, plus the query for
// parameterized objects).
func (p *Proxy) ObjectStats(key string) Stats {
	e := p.lookup(key)
	if e == nil {
		return Stats{}
	}
	return Stats{
		Polls:     e.polls.Load(),
		Triggered: e.triggered.Load(),
		Pushed:    e.pushed.Load(),
		Applied:   e.applied.Load(),
		Hits:      e.hits.Load(),
		Bytes:     e.size.Load(),
		Cached:    true,
		Grouped:   e.group != "",
	}
}

// ResidentBytes returns the byte ledger's current total.
func (p *Proxy) ResidentBytes() int64 { return p.store.residentBytes() }

// CachedBody returns the currently cached body for key.
func (p *Proxy) CachedBody(key string) ([]byte, bool) {
	e := p.lookup(key)
	if e == nil {
		return nil, false
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]byte(nil), e.body...), true
}

// Len returns the number of cached objects.
func (p *Proxy) Len() int { return p.store.len() }

// Kick wakes the refresh dispatcher so it re-reads the clock and the
// schedule. A harness that substitutes a stepped Config.Clock (the
// simtime conformance battery) must call it after every clock advance;
// under a wall clock it is never needed.
func (p *Proxy) Kick() { p.kick() }

// NextRefreshAt returns the earliest scheduled refresh instant, or
// ok=false when nothing is scheduled.
func (p *Proxy) NextRefreshAt() (at time.Time, ok bool) {
	p.schedMu.Lock()
	defer p.schedMu.Unlock()
	if it := p.schedule.Peek(); it != nil {
		return it.At, true
	}
	return time.Time{}, false
}

// InFlightPolls returns the number of refresh jobs dispatched, queued,
// or executing but not yet completed. A proxy is quiescent when
// InFlightPolls is zero and NextRefreshAt lies in the future.
func (p *Proxy) InFlightPolls() int { return int(p.pending.Load()) }
