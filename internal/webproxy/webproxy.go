// Package webproxy implements a live HTTP caching proxy that maintains
// Δt-consistency and mutual consistency for the objects it caches, using
// the same core policy state machines as the simulator. It is the paper's
// stated future work ("implement our techniques in the Squid proxy
// cache") realized as a self-contained Go proxy.
//
// Cache misses fetch from the origin and register the object with a LIMD
// refresher. A single background goroutine drives all refreshes: it polls
// each object when its TTR expires using If-Modified-Since requests,
// consumes the modification-history extension when the origin provides
// it, and — for objects sharing a consistency group — triggers immediate
// polls of related objects when an update is detected, exactly as in
// §3.2 of the paper.
package webproxy

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"broadway/internal/core"
	"broadway/internal/httpx"
	"broadway/internal/simtime"
)

// Config parameterizes a Proxy.
type Config struct {
	// Origin is the base URL of the upstream server. Required.
	Origin *url.URL
	// Client performs upstream requests; defaults to a client with a
	// 10-second timeout.
	Client *http.Client
	// DefaultDelta is the Δt tolerance applied to objects whose origin
	// response carries no x-cc-delta directive. Defaults to one minute.
	DefaultDelta time.Duration
	// Bounds clamp the TTRs of all refresh policies. Min defaults to
	// the object's Δ, Max to 60 minutes.
	Bounds core.TTRBounds
	// Mode selects the mutual-consistency approach for grouped objects.
	// Defaults to TriggerAll.
	Mode core.TriggerMode
	// DefaultGroupDelta is δ for groups whose origin responses carry no
	// x-mc-delta directive. Defaults to DefaultDelta.
	DefaultGroupDelta time.Duration
	// Clock substitutes the time source (tests accelerate it).
	Clock func() time.Time
}

// entry is one cached object.
type entry struct {
	path   string
	policy core.Policy
	group  string

	body        []byte
	contentType string
	lastMod     time.Time
	hasLastMod  bool
	validatedAt time.Time

	// Value-domain objects (origin advertised x-cc-vdelta): the body is
	// parsed as a decimal value and the entry runs an AdaptiveTTR
	// policy over it.
	isValue bool
	value   float64
	// paired marks a value entry whose policy belongs to a
	// MutualValuePartitioned pair (M_v consistency, §4.2).
	paired bool

	nextAt    time.Time
	polls     uint64
	triggered uint64
	hits      uint64
}

// Proxy is a live caching HTTP proxy. Construct with New, then Start the
// refresher; Close releases it.
type Proxy struct {
	cfg   Config
	epoch time.Time

	mu      sync.Mutex
	entries map[string]*entry
	groups  map[string]*core.MutualTimeController

	wake chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	started bool
	closed  bool
}

var _ http.Handler = (*Proxy)(nil)

// New validates the configuration and returns a proxy. Call Start to
// launch the background refresher.
func New(cfg Config) (*Proxy, error) {
	if cfg.Origin == nil {
		return nil, errors.New("webproxy: Config.Origin is required")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.DefaultDelta <= 0 {
		cfg.DefaultDelta = time.Minute
	}
	if cfg.Mode == 0 {
		cfg.Mode = core.TriggerAll
	}
	if cfg.DefaultGroupDelta <= 0 {
		cfg.DefaultGroupDelta = cfg.DefaultDelta
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Proxy{
		cfg:     cfg,
		epoch:   cfg.Clock(),
		entries: make(map[string]*entry),
		groups:  make(map[string]*core.MutualTimeController),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}, nil
}

// Start launches the background refresher. It is idempotent.
func (p *Proxy) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started || p.closed {
		return
	}
	p.started = true
	p.wg.Add(1)
	go p.refreshLoop()
}

// Close stops the refresher and waits for it to exit. The proxy continues
// to serve cached (now unrefreshed) content afterwards.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	started := p.started
	p.mu.Unlock()
	close(p.done)
	if started {
		p.wg.Wait()
	}
}

// ServeHTTP serves cache hits locally and fills misses from the origin.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	path := r.URL.Path

	p.mu.Lock()
	e, ok := p.entries[path]
	if ok {
		e.hits++
		body := append([]byte(nil), e.body...)
		contentType := e.contentType
		lastMod, hasLastMod := e.lastMod, e.hasLastMod
		p.mu.Unlock()
		writeObject(w, body, contentType, lastMod, hasLastMod, "HIT")
		return
	}
	p.mu.Unlock()

	e, err := p.admit(path)
	if err != nil {
		http.Error(w, fmt.Sprintf("upstream fetch failed: %v", err), http.StatusBadGateway)
		return
	}
	p.mu.Lock()
	body := append([]byte(nil), e.body...)
	contentType := e.contentType
	lastMod, hasLastMod := e.lastMod, e.hasLastMod
	p.mu.Unlock()
	writeObject(w, body, contentType, lastMod, hasLastMod, "MISS")
}

func writeObject(w http.ResponseWriter, body []byte, contentType string, lastMod time.Time, hasLastMod bool, cacheStatus string) {
	if contentType != "" {
		w.Header().Set("Content-Type", contentType)
	}
	if hasLastMod {
		w.Header().Set("Last-Modified", lastMod.UTC().Format(http.TimeFormat))
	}
	w.Header().Set("X-Cache", cacheStatus)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// admit fetches the object for the first time and registers it with the
// refresher.
func (p *Proxy) admit(path string) (*entry, error) {
	resp, err := p.fetch(path, time.Time{})
	if err != nil {
		return nil, err
	}

	delta := p.cfg.DefaultDelta
	groupDelta := p.cfg.DefaultGroupDelta
	valueDelta := 0.0
	group := ""
	if tol, err := httpx.TolerancesFrom(resp.header); err == nil {
		if tol.Delta > 0 {
			delta = tol.Delta
		}
		if tol.GroupDelta > 0 {
			groupDelta = tol.GroupDelta
		}
		valueDelta = tol.ValueDelta
		group = tol.Group
	}

	now := p.cfg.Clock()
	e := &entry{
		path:        path,
		group:       group,
		body:        resp.body,
		contentType: resp.contentType,
		lastMod:     resp.lastMod,
		hasLastMod:  resp.hasLastMod,
		validatedAt: now,
		polls:       1,
	}
	// An origin advertising a Δv tolerance with a numeric body selects
	// value-domain consistency (§4.1); everything else runs LIMD.
	if v, ok := parseValueBody(resp.body); ok && valueDelta > 0 {
		e.isValue = true
		e.value = v
		e.policy = core.NewAdaptiveTTR(core.AdaptiveTTRConfig{
			Delta:  valueDelta,
			Bounds: p.cfg.Bounds,
		})
	} else {
		e.policy = core.NewLIMD(core.LIMDConfig{Delta: delta, Bounds: p.cfg.Bounds})
	}
	e.nextAt = now.Add(e.policy.InitialTTR())

	p.mu.Lock()
	if existing, raced := p.entries[path]; raced {
		p.mu.Unlock()
		return existing, nil
	}
	p.entries[path] = e
	if group != "" {
		if _, ok := p.groups[group]; !ok {
			p.groups[group] = core.NewMutualTimeController(core.MutualTimeConfig{
				Delta: groupDelta,
				Mode:  p.cfg.Mode,
			})
		}
		// Two value-domain members of the same group form a
		// partitioned M_v pair (§4.2): the mutual tolerance δ is split
		// across them in inverse proportion to their change rates. The
		// reduction applies to the difference function and pairs only;
		// further value members of the group keep individual policies.
		if e.isValue && valueDelta > 0 {
			for _, other := range p.entries {
				if other == e || other.group != group || !other.isValue || other.paired {
					continue
				}
				pair := core.NewMutualValuePartitioned(core.MutualValueConfig{
					Delta:  valueDelta,
					Bounds: p.cfg.Bounds,
				})
				other.policy = pair.PolicyA()
				e.policy = pair.PolicyB()
				other.paired = true
				e.paired = true
				break
			}
		}
	}
	p.mu.Unlock()

	p.kick()
	return e, nil
}

// kick wakes the refresher after schedule changes.
func (p *Proxy) kick() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// upstreamResponse is the distilled result of one origin poll.
type upstreamResponse struct {
	notModified bool
	body        []byte
	contentType string
	lastMod     time.Time
	hasLastMod  bool
	history     []time.Time
	header      http.Header
}

// fetch performs a GET against the origin, conditional when since is
// non-zero.
func (p *Proxy) fetch(path string, since time.Time) (*upstreamResponse, error) {
	u := *p.cfg.Origin
	u.Path = path
	req, err := http.NewRequest(http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, err
	}
	if !since.IsZero() {
		req.Header.Set("If-Modified-Since", since.UTC().Format(http.TimeFormat))
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	out := &upstreamResponse{header: resp.Header}
	if lm := resp.Header.Get("Last-Modified"); lm != "" {
		if t, err := http.ParseTime(lm); err == nil {
			out.lastMod = t
			out.hasLastMod = true
		}
	}
	if hist, err := httpx.HistoryFrom(resp.Header); err == nil {
		out.history = hist
	}
	switch resp.StatusCode {
	case http.StatusNotModified:
		out.notModified = true
		return out, nil
	case http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
		if err != nil {
			return nil, err
		}
		out.body = body
		out.contentType = resp.Header.Get("Content-Type")
		return out, nil
	default:
		return nil, fmt.Errorf("webproxy: origin returned %s", resp.Status)
	}
}

// refreshLoop drives all TTR-based polls from a single goroutine.
func (p *Proxy) refreshLoop() {
	defer p.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		next, ok := p.earliest()
		var wait time.Duration
		if ok {
			wait = time.Until(next)
			if clock := p.cfg.Clock; clock != nil {
				wait = next.Sub(clock())
			}
			if wait < 0 {
				wait = 0
			}
		} else {
			wait = time.Hour
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-p.done:
			return
		case <-p.wake:
		case <-timer.C:
			p.pollDue()
		}
	}
}

// earliest returns the soonest scheduled poll instant.
func (p *Proxy) earliest() (time.Time, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best time.Time
	found := false
	for _, e := range p.entries {
		if !found || e.nextAt.Before(best) {
			best = e.nextAt
			found = true
		}
	}
	return best, found
}

// pollDue polls every entry whose TTR has expired.
func (p *Proxy) pollDue() {
	now := p.cfg.Clock()
	p.mu.Lock()
	var due []*entry
	for _, e := range p.entries {
		if !e.nextAt.After(now) {
			due = append(due, e)
		}
	}
	p.mu.Unlock()
	for _, e := range due {
		p.pollEntry(e, false)
	}
}

// pollEntry performs one refresh of e. Triggered polls leave the regular
// schedule untouched, mirroring the simulator's proxy.
func (p *Proxy) pollEntry(e *entry, triggered bool) {
	p.mu.Lock()
	since := e.lastMod
	hasSince := e.hasLastMod
	prevValidated := e.validatedAt
	p.mu.Unlock()

	if !hasSince {
		since = prevValidated
	}
	resp, err := p.fetch(e.path, since)
	now := p.cfg.Clock()
	if err != nil {
		// Upstream failure: retry after the initial TTR without
		// feeding the policy.
		p.mu.Lock()
		e.nextAt = now.Add(e.policy.InitialTTR())
		p.mu.Unlock()
		return
	}

	outcome := core.PollOutcome{
		Now:      p.toSim(now),
		Prev:     p.toSim(prevValidated),
		Modified: !resp.notModified,
	}
	if resp.hasLastMod {
		outcome.LastModified = p.toSim(resp.lastMod)
		outcome.HasLastModified = true
	}
	for _, h := range resp.history {
		outcome.History = append(outcome.History, p.toSim(h))
	}

	p.mu.Lock()
	e.polls++
	if triggered {
		e.triggered++
	}
	e.validatedAt = now
	if e.isValue {
		outcome.HasValue = true
		outcome.PrevValue = e.value
		outcome.Value = e.value
	}
	if !resp.notModified {
		e.body = resp.body
		if resp.contentType != "" {
			e.contentType = resp.contentType
		}
		if resp.hasLastMod {
			e.lastMod = resp.lastMod
			e.hasLastMod = true
		}
		if e.isValue {
			if v, ok := parseValueBody(resp.body); ok {
				e.value = v
				outcome.Value = v
			}
		}
	}
	var ctrl *core.MutualTimeController
	if e.group != "" {
		ctrl = p.groups[e.group]
	}
	if !triggered {
		e.nextAt = now.Add(e.policy.NextTTR(outcome))
	}
	if ctrl != nil {
		ctrl.ObserveOutcome(core.ObjectID(e.path), outcome)
	}
	p.mu.Unlock()

	// Temporal group triggering; partitioned M_v pairs maintain their
	// mutual guarantee through the tolerance split instead.
	if !triggered && outcome.Modified && ctrl != nil && !e.paired {
		p.triggerGroup(e, ctrl, now)
	}
	p.kick()
}

// triggerGroup triggers immediate extra polls of e's group members where
// the controller demands it.
func (p *Proxy) triggerGroup(e *entry, ctrl *core.MutualTimeController, now time.Time) {
	p.mu.Lock()
	var toTrigger []*entry
	for _, other := range p.entries {
		if other == e || other.group != e.group {
			continue
		}
		if ctrl.ShouldTrigger(core.ObjectID(e.path), core.ObjectID(other.path),
			p.toSim(now), p.toSim(other.validatedAt), p.toSim(other.nextAt)) {
			toTrigger = append(toTrigger, other)
		}
	}
	p.mu.Unlock()
	for _, other := range toTrigger {
		p.pollEntry(other, true)
	}
}

// parseValueBody interprets a response body as a decimal value (e.g. a
// stock quote feed serving "165.38\n").
func parseValueBody(body []byte) (float64, bool) {
	s := strings.TrimSpace(string(body))
	if s == "" || len(s) > 64 {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// toSim maps wall-clock time onto the simulated timeline the core
// policies operate in (nanoseconds since the proxy's epoch).
func (p *Proxy) toSim(t time.Time) simtime.Time {
	if t.IsZero() {
		return 0
	}
	return simtime.At(t.Sub(p.epoch))
}

// Stats reports cache activity for one object.
type Stats struct {
	Polls     uint64
	Triggered uint64
	Hits      uint64
	Cached    bool
}

// ObjectStats returns the stats for path.
func (p *Proxy) ObjectStats(path string) Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[path]
	if !ok {
		return Stats{}
	}
	return Stats{Polls: e.polls, Triggered: e.triggered, Hits: e.hits, Cached: true}
}

// CachedBody returns the currently cached body for path.
func (p *Proxy) CachedBody(path string) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), e.body...), true
}
