// Package webproxy implements a live HTTP caching proxy that maintains
// Δt-consistency and mutual consistency for the objects it caches, using
// the same core policy state machines as the simulator. It is the paper's
// stated future work ("implement our techniques in the Squid proxy
// cache") realized as a self-contained Go proxy, shaped for production
// concurrency rather than a single-threaded demo.
//
// The architecture splits into three independent layers:
//
//   - A sharded object store (2^k shards, per-shard RWMutex, FNV-keyed;
//     see store.go). Cache hits touch only their own shard and share the
//     immutable body slice, so the hit path scales with parallelism
//     instead of serializing on a global lock.
//   - A min-heap refresh schedule (internal/sched) ordered by each
//     object's next poll instant, giving the dispatcher O(log n) access
//     to the next due refresh instead of an O(n) scan.
//   - A bounded pool of poll workers (Config.PollWorkers) that perform
//     the origin fetches (see refresh.go). Work is routed by the FNV
//     hash of the consistency group (or the cache key for ungrouped
//     objects), so MutualTimeController state stays effectively
//     single-threaded per group, and a slow origin stalls at most the
//     one worker its hash lands on — the other workers' objects keep
//     refreshing — instead of stalling the whole proxy as the previous
//     single-refresher design did.
//
// Cache misses are admitted through a singleflight group: N concurrent
// first requests for one object produce exactly one origin fetch. Cache
// keys include the canonicalized query string, so /stock?sym=A and
// /stock?sym=B are distinct objects; because that makes key cardinality
// client-controlled, admission is capped by Config.MaxObjects — beyond
// the cap, requests are proxied without being cached or scheduled.
// Upstream failures back off exponentially (capped at the TTR upper
// bound) without disturbing the policy's learned TTR state.
//
// Refresh semantics are unchanged from the paper: each object polls the
// origin when its TTR expires using If-Modified-Since, consumes the
// modification-history extension when the origin provides it, and — for
// objects sharing a consistency group — triggers immediate polls of
// related objects when an update is detected, exactly as in §3.2.
package webproxy

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"broadway/internal/core"
	"broadway/internal/httpx"
	"broadway/internal/sched"
	"broadway/internal/simtime"
	"broadway/internal/singleflight"
)

// Config parameterizes a Proxy.
type Config struct {
	// Origin is the base URL of the upstream server. Required.
	Origin *url.URL
	// Client performs upstream requests; defaults to a client with a
	// 10-second timeout.
	Client *http.Client
	// DefaultDelta is the Δt tolerance applied to objects whose origin
	// response carries no x-cc-delta directive. Defaults to one minute.
	DefaultDelta time.Duration
	// Bounds clamp the TTRs of all refresh policies. Min defaults to
	// the object's Δ, Max to 60 minutes.
	Bounds core.TTRBounds
	// Mode selects the mutual-consistency approach for grouped objects.
	// Defaults to TriggerAll.
	Mode core.TriggerMode
	// DefaultGroupDelta is δ for groups whose origin responses carry no
	// x-mc-delta directive. Defaults to DefaultDelta.
	DefaultGroupDelta time.Duration
	// Shards is the number of object-store shards, rounded up to a
	// power of two. Defaults to 64.
	Shards int
	// MaxObjects caps the number of cached objects. Requests beyond the
	// cap are proxied without being cached or scheduled for refresh, so
	// a client enumerating query strings cannot grow memory and origin
	// poll load without bound. Defaults to 65536; negative disables the
	// cap.
	MaxObjects int
	// PollWorkers bounds the number of concurrent origin polls.
	// Defaults to GOMAXPROCS.
	PollWorkers int
	// Clock substitutes the time source. It may be offset from the real
	// clock but must advance at wall rate: the dispatcher computes
	// waits on this timeline and sleeps them in wall time.
	Clock func() time.Time
}

// entry is one cached object.
type entry struct {
	key   string // canonical cache key: path plus sorted query
	group string

	// mu guards the mutable data fields below. The policy runs only on
	// the entry's affinity worker (or, for a partitioned M_v pair, the
	// group's worker), but pairing at admission can swap it, so it is
	// guarded too.
	mu     sync.RWMutex
	policy core.Policy

	body        []byte // replaced wholesale on refresh, never mutated
	contentType string
	lastMod     time.Time
	hasLastMod  bool
	validatedAt time.Time
	failures    int // consecutive upstream failures

	// Value-domain objects (origin advertised x-cc-vdelta): the body is
	// parsed as a decimal value and the entry runs an AdaptiveTTR
	// policy over it.
	isValue bool
	value   float64
	// paired marks a value entry whose policy belongs to a
	// MutualValuePartitioned pair (M_v consistency, §4.2).
	paired bool

	// nextAt and item are guarded by the proxy's schedMu.
	nextAt time.Time
	item   *sched.Item

	polls     atomic.Uint64
	triggered atomic.Uint64
	hits      atomic.Uint64
}

// groupState is the serialization domain of one consistency group: the
// shared controller plus the member list, guarded by mu.
type groupState struct {
	mu      sync.Mutex
	ctrl    *core.MutualTimeController
	members []*entry
}

// Proxy is a live caching HTTP proxy. Construct with New, then Start the
// refresher; Close releases it.
type Proxy struct {
	cfg   Config
	epoch time.Time

	store  *store
	flight singleflight.Group

	groupMu sync.RWMutex
	groups  map[string]*groupState

	schedMu  sync.Mutex
	schedule sched.Heap

	workers []*worker
	wake    chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup

	lifeMu  sync.Mutex
	started bool
	closed  bool
}

var _ http.Handler = (*Proxy)(nil)

// New validates the configuration and returns a proxy. Call Start to
// launch the background refresher.
func New(cfg Config) (*Proxy, error) {
	if cfg.Origin == nil {
		return nil, errors.New("webproxy: Config.Origin is required")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.DefaultDelta <= 0 {
		cfg.DefaultDelta = time.Minute
	}
	if cfg.Mode == 0 {
		cfg.Mode = core.TriggerAll
	}
	if cfg.DefaultGroupDelta <= 0 {
		cfg.DefaultGroupDelta = cfg.DefaultDelta
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 64
	}
	// Cap before rounding: beyond this sharding buys nothing, and an
	// absurd value would overflow nextPow2 and the uint32 shard mask.
	if cfg.Shards > maxShards {
		cfg.Shards = maxShards
	}
	cfg.Shards = nextPow2(cfg.Shards)
	if cfg.PollWorkers <= 0 {
		cfg.PollWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxObjects == 0 {
		cfg.MaxObjects = 1 << 16
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	p := &Proxy{
		cfg:     cfg,
		epoch:   cfg.Clock(),
		store:   newStore(cfg.Shards),
		groups:  make(map[string]*groupState),
		workers: make([]*worker, cfg.PollWorkers),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	for i := range p.workers {
		p.workers[i] = &worker{wake: make(chan struct{}, 1)}
	}
	return p, nil
}

// Start launches the refresh dispatcher and the poll worker pool. It is
// idempotent.
func (p *Proxy) Start() {
	p.lifeMu.Lock()
	defer p.lifeMu.Unlock()
	if p.started || p.closed {
		return
	}
	p.started = true
	p.wg.Add(1 + len(p.workers))
	go p.dispatchLoop()
	for _, w := range p.workers {
		go p.workerLoop(w)
	}
}

// Close stops the refresher and waits for it to exit. The proxy continues
// to serve cached (now unrefreshed) content afterwards.
func (p *Proxy) Close() {
	p.lifeMu.Lock()
	if p.closed {
		p.lifeMu.Unlock()
		return
	}
	p.closed = true
	started := p.started
	p.lifeMu.Unlock()
	close(p.done)
	if started {
		p.wg.Wait()
	}
}

// canonicalKey maps a request URL to its cache key: the escaped path,
// plus the query string re-encoded with sorted parameters so that
// permutations of the same query share one cached object. The escaped
// path keeps an encoded '?' (%3F) in path data from masquerading as a
// query separator when the key is split again in fetch.
func canonicalKey(u *url.URL) string {
	path := u.EscapedPath()
	if u.RawQuery == "" {
		return path
	}
	q := canonicalQuery(u.RawQuery)
	if q == "" {
		return path
	}
	return path + "?" + q
}

// canonicalQuery sorts well-formed queries into a canonical encoding.
// A query that does not survive a parse/encode round trip (malformed
// escapes, stray semicolons) is kept verbatim: collapsing it would drop
// parameters from the upstream fetch and alias distinct client URLs.
func canonicalQuery(rawQuery string) string {
	q, err := url.ParseQuery(rawQuery)
	if err != nil {
		return rawQuery
	}
	return q.Encode() // Encode sorts parameters by key
}

// ServeHTTP serves cache hits locally and fills misses from the origin.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	key := canonicalKey(r.URL)

	if e := p.store.get(key); e != nil {
		e.hits.Add(1)
		p.serveEntry(w, e, "HIT")
		return
	}

	// Singleflight admission: concurrent first requests for one key
	// share a single origin fetch.
	v, err, _ := p.flight.Do(key, func() (any, error) { return p.admit(key) })
	if err != nil {
		http.Error(w, fmt.Sprintf("upstream fetch failed: %v", err), http.StatusBadGateway)
		return
	}
	p.serveEntry(w, v.(*entry), "MISS")
}

// serveEntry writes e's current cached representation. The body slice is
// shared, not copied: refreshes replace it wholesale and never mutate it
// in place.
func (p *Proxy) serveEntry(w http.ResponseWriter, e *entry, cacheStatus string) {
	e.mu.RLock()
	body := e.body
	contentType := e.contentType
	lastMod, hasLastMod := e.lastMod, e.hasLastMod
	e.mu.RUnlock()
	writeObject(w, body, contentType, lastMod, hasLastMod, cacheStatus)
}

func writeObject(w http.ResponseWriter, body []byte, contentType string, lastMod time.Time, hasLastMod bool, cacheStatus string) {
	if contentType != "" {
		w.Header().Set("Content-Type", contentType)
	}
	if hasLastMod {
		w.Header().Set("Last-Modified", lastMod.UTC().Format(http.TimeFormat))
	}
	w.Header().Set("X-Cache", cacheStatus)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// admit fetches the object for the first time and registers it with the
// refresher. Callers serialize per key through the singleflight group.
func (p *Proxy) admit(key string) (*entry, error) {
	if e := p.store.get(key); e != nil {
		return e, nil
	}
	resp, err := p.fetch(key, time.Time{})
	if err != nil {
		return nil, err
	}

	delta := p.cfg.DefaultDelta
	groupDelta := p.cfg.DefaultGroupDelta
	valueDelta := 0.0
	group := ""
	if tol, err := httpx.TolerancesFrom(resp.header); err == nil {
		if tol.Delta > 0 {
			delta = tol.Delta
		}
		if tol.GroupDelta > 0 {
			groupDelta = tol.GroupDelta
		}
		valueDelta = tol.ValueDelta
		group = tol.Group
	}

	now := p.cfg.Clock()
	e := &entry{
		key:         key,
		group:       group,
		body:        resp.body,
		contentType: resp.contentType,
		lastMod:     resp.lastMod,
		hasLastMod:  resp.hasLastMod,
		validatedAt: now,
	}
	e.polls.Store(1)
	// An origin advertising a Δv tolerance with a numeric body selects
	// value-domain consistency (§4.1); everything else runs LIMD.
	if v, ok := parseValueBody(resp.body); ok && valueDelta > 0 {
		e.isValue = true
		e.value = v
		e.policy = core.NewAdaptiveTTR(core.AdaptiveTTRConfig{
			Delta:  valueDelta,
			Bounds: p.cfg.Bounds,
		})
	} else {
		e.policy = core.NewLIMD(core.LIMDConfig{Delta: delta, Bounds: p.cfg.Bounds})
	}

	actual, inserted, capped := p.store.put(key, e, p.cfg.MaxObjects)
	if capped {
		// At capacity the object is served but not admitted: no store
		// entry, no refresh schedule. The next request proxies again.
		return e, nil
	}
	if !inserted {
		return actual, nil
	}
	if group != "" {
		p.joinGroup(e, group, groupDelta, valueDelta)
	}

	e.mu.RLock()
	ttr := e.policy.InitialTTR()
	e.mu.RUnlock()
	p.reschedule(e, now.Add(ttr))
	return e, nil
}

// joinGroup registers e with its consistency group, pairing two
// value-domain members under a partitioned M_v controller (§4.2): the
// mutual tolerance δ is split across the pair in inverse proportion to
// their change rates. The reduction applies to the difference function
// and pairs only; further value members of the group keep individual
// policies.
func (p *Proxy) joinGroup(e *entry, group string, groupDelta time.Duration, valueDelta float64) {
	gs := p.groupStateOrCreate(group, groupDelta)
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if e.isValue && valueDelta > 0 {
		for _, other := range gs.members {
			if !other.isValue {
				continue
			}
			other.mu.Lock()
			if other.paired {
				other.mu.Unlock()
				continue
			}
			pair := core.NewMutualValuePartitioned(core.MutualValueConfig{
				Delta:  valueDelta,
				Bounds: p.cfg.Bounds,
			})
			other.policy = pair.PolicyA()
			other.paired = true
			other.mu.Unlock()
			e.mu.Lock()
			e.policy = pair.PolicyB()
			e.paired = true
			e.mu.Unlock()
			break
		}
	}
	gs.members = append(gs.members, e)
}

// upstreamResponse is the distilled result of one origin poll.
type upstreamResponse struct {
	notModified bool
	body        []byte
	contentType string
	lastMod     time.Time
	hasLastMod  bool
	history     []time.Time
	header      http.Header
}

// fetch performs a GET against the origin, conditional when since is
// non-zero. key carries the canonical path-plus-query, which is replayed
// onto the upstream URL.
func (p *Proxy) fetch(key string, since time.Time) (*upstreamResponse, error) {
	u := *p.cfg.Origin
	escPath, rawQuery := key, ""
	if i := strings.IndexByte(key, '?'); i >= 0 {
		escPath, rawQuery = key[:i], key[i+1:]
	}
	// The key carries the *escaped* path (see canonicalKey); decode it
	// for u.Path and keep the escaped form in u.RawPath so the upstream
	// URL preserves the client's encoding exactly.
	if unescaped, err := url.PathUnescape(escPath); err == nil {
		u.Path = unescaped
	} else {
		u.Path = escPath
	}
	u.RawPath = escPath
	u.RawQuery = rawQuery
	req, err := http.NewRequest(http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, err
	}
	if !since.IsZero() {
		req.Header.Set("If-Modified-Since", since.UTC().Format(http.TimeFormat))
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	out := &upstreamResponse{header: resp.Header}
	if lm := resp.Header.Get("Last-Modified"); lm != "" {
		if t, err := http.ParseTime(lm); err == nil {
			out.lastMod = t
			out.hasLastMod = true
		}
	}
	if hist, err := httpx.HistoryFrom(resp.Header); err == nil {
		out.history = hist
	}
	switch resp.StatusCode {
	case http.StatusNotModified:
		out.notModified = true
		return out, nil
	case http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
		if err != nil {
			return nil, err
		}
		out.body = body
		out.contentType = resp.Header.Get("Content-Type")
		return out, nil
	default:
		return nil, fmt.Errorf("webproxy: origin returned %s", resp.Status)
	}
}

// parseValueBody interprets a response body as a decimal value (e.g. a
// stock quote feed serving "165.38\n").
func parseValueBody(body []byte) (float64, bool) {
	s := strings.TrimSpace(string(body))
	if s == "" || len(s) > 64 {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// toSim maps wall-clock time onto the simulated timeline the core
// policies operate in (nanoseconds since the proxy's epoch).
func (p *Proxy) toSim(t time.Time) simtime.Time {
	if t.IsZero() {
		return 0
	}
	return simtime.At(t.Sub(p.epoch))
}

// Stats reports cache activity for one object.
type Stats struct {
	Polls     uint64
	Triggered uint64
	Hits      uint64
	Cached    bool
}

// lookup finds the entry for a caller-supplied key, canonicalizing it
// the same way ServeHTTP does when the verbatim form misses (so
// "/stock?b=2&a=1" finds the object cached under "/stock?a=1&b=2").
func (p *Proxy) lookup(key string) *entry {
	if e := p.store.get(key); e != nil {
		return e
	}
	if u, err := url.Parse(key); err == nil {
		if ck := canonicalKey(u); ck != key {
			return p.store.get(ck)
		}
	}
	return nil
}

// ObjectStats returns the stats for key (a path, plus the query for
// parameterized objects).
func (p *Proxy) ObjectStats(key string) Stats {
	e := p.lookup(key)
	if e == nil {
		return Stats{}
	}
	return Stats{
		Polls:     e.polls.Load(),
		Triggered: e.triggered.Load(),
		Hits:      e.hits.Load(),
		Cached:    true,
	}
}

// CachedBody returns the currently cached body for key.
func (p *Proxy) CachedBody(key string) ([]byte, bool) {
	e := p.lookup(key)
	if e == nil {
		return nil, false
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]byte(nil), e.body...), true
}

// Len returns the number of cached objects.
func (p *Proxy) Len() int { return p.store.len() }
