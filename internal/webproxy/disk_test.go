package webproxy

// Tests for the persistent disk tier: kill-and-restart rehydration on
// the stepped clock (the Δt guarantee must hold across a process
// boundary), demotion keeping a working set larger than RAM servable,
// grace-window semantics, and two-tier eviction.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"broadway/internal/core"
	"broadway/internal/webserver"
)

// ttrOf reads the learned TTR of a resident entry's policy.
func ttrOf(t *testing.T, px *Proxy, key string) time.Duration {
	t.Helper()
	e := px.lookup(key)
	if e == nil {
		t.Fatalf("%s not resident", key)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	tp, ok := e.policy.(interface{ TTR() time.Duration })
	if !ok {
		t.Fatalf("%s policy %T does not expose TTR", key, e.policy)
	}
	return tp.TTR()
}

// quiesceSim drives the proxy until no poll is queued, in flight, or due
// at the current virtual instant (the conformance battery's replay
// discipline, reused for restart tests).
func quiesceSim(t *testing.T, px *Proxy, clk *simClock) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		inFlight := px.InFlightPolls()
		next, ok := px.NextRefreshAt()
		if inFlight == 0 && (!ok || next.After(clk.Now())) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("proxy never quiesced: inflight=%d next=%v now=%v", inFlight, next, clk.Now())
		}
		px.Kick()
		time.Sleep(100 * time.Microsecond)
	}
}

// TestRestartRehydratesWarmZeroDeltaViolations is the kill-and-restart
// conformance replay: a proxy learns per-object TTRs on the stepped
// clock, shuts down, and a second proxy over the same -disk-dir must
// come back warm — every object resident before Start, served as
// X-Cache: GRACE until its single validation poll confirms it, learned
// TTR state intact — with no body ever served that violates Δt after
// validation, including an object the origin rewrote during the
// downtime.
func TestRestartRehydratesWarmZeroDeltaViolations(t *testing.T) {
	clk := newSimClock()
	dir := t.TempDir()

	origin := webserver.NewOrigin(webserver.WithClock(clk.Now))
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	u, err := url.Parse(originSrv.URL)
	if err != nil {
		t.Fatal(err)
	}

	const n = 6
	truth := make(map[string]string, n) // origin ground truth per key
	key := func(i int) string { return fmt.Sprintf("/d/%d", i) }
	for i := 0; i < n; i++ {
		truth[key(i)] = fmt.Sprintf("object %d rev 1", i)
		origin.Set(key(i), []byte(truth[key(i)]), "text/plain")
	}

	var mu sync.Mutex
	polls := make(map[string]int)
	cfg := Config{
		Origin:       u,
		Clock:        clk.Now,
		PollWorkers:  1,
		DefaultDelta: 30 * time.Second,
		Bounds:       core.TTRBounds{Min: 10 * time.Second, Max: 10 * time.Minute},
		DiskDir:      dir,
		PollObserver: func(o PollObservation) {
			mu.Lock()
			polls[o.Key]++
			mu.Unlock()
		},
	}

	px1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	px1.Start()
	clk.AdvanceTo(clk.base.Add(admissionPhase))
	for i := 0; i < n; i++ {
		if code, body, _ := proxyGet(t, px1, key(i)); code != 200 || body != truth[key(i)] {
			t.Fatalf("admission of %s: %d %q", key(i), code, body)
		}
	}
	quiesceSim(t, px1, clk)

	// Learn: three unmodified refresh rounds grow each object's TTR past
	// the lower bound; that learned schedule is what must survive.
	for round := 0; round < 3; round++ {
		next, ok := px1.NextRefreshAt()
		if !ok {
			t.Fatal("nothing scheduled")
		}
		clk.AdvanceTo(next)
		px1.Kick()
		quiesceSim(t, px1, clk)
	}
	learned := make(map[string]time.Duration, n)
	for i := 0; i < n; i++ {
		learned[key(i)] = ttrOf(t, px1, key(i))
		if learned[key(i)] <= cfg.Bounds.Min {
			t.Fatalf("%s TTR %v never grew past the bound %v", key(i), learned[key(i)], cfg.Bounds.Min)
		}
	}
	px1.Close()

	// Downtime: two minutes pass (inside the default 5m grace window),
	// during which the origin rewrites object 0.
	clk.AdvanceTo(clk.Now().Add(2 * time.Minute))
	truth[key(0)] = "object 0 rev 2"
	origin.Set(key(0), []byte(truth[key(0)]), "text/plain")

	mu.Lock()
	polls = make(map[string]int)
	mu.Unlock()
	px2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer px2.Close()

	// Before Start: every object is back, learned TTR intact (no
	// validation poll has run yet to advance it), served under grace.
	if got := px2.Len(); got != n {
		t.Fatalf("rehydrated %d objects, want %d", got, n)
	}
	if got := px2.DiskStats().Rehydrated; got != n {
		t.Errorf("DiskStats.Rehydrated = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if got := ttrOf(t, px2, key(i)); got != learned[key(i)] {
			t.Errorf("%s restored TTR = %v, want the learned %v", key(i), got, learned[key(i)])
		}
		code, body, hdr := proxyGet(t, px2, key(i))
		if code != 200 {
			t.Fatalf("grace serve of %s: %d", key(i), code)
		}
		if hdr.Get("X-Cache") != "GRACE" {
			t.Errorf("pre-validation serve of %s labeled %q, want GRACE", key(i), hdr.Get("X-Cache"))
		}
		// The grace window bounds what this serve may be: the last
		// validated copy. Object 0's downtime rewrite is allowed to be
		// invisible here — but only here.
		if i != 0 && body != truth[key(i)] {
			t.Errorf("grace serve of %s = %q, want %q", key(i), body, truth[key(i)])
		}
	}
	if px2.DiskStats().GraceServes == 0 {
		t.Error("no grace serves counted")
	}

	// Start drains the validation polls through the worker pool.
	px2.Start()
	quiesceSim(t, px2, clk)

	// Exactly one validation poll per object — a restart must not herd.
	mu.Lock()
	for i := 0; i < n; i++ {
		if got := polls[key(i)]; got != 1 {
			t.Errorf("%s saw %d validation polls, want 1", key(i), got)
		}
	}
	mu.Unlock()

	// Validated: every serve is a plain HIT of the origin's current
	// body — the downtime rewrite included. Zero Δt violations remain.
	for i := 0; i < n; i++ {
		code, body, hdr := proxyGet(t, px2, key(i))
		if code != 200 || body != truth[key(i)] {
			t.Errorf("post-validation serve of %s = %d %q, want 200 %q", key(i), code, body, truth[key(i)])
		}
		if hdr.Get("X-Cache") != "HIT" {
			t.Errorf("post-validation serve of %s labeled %q, want HIT", key(i), hdr.Get("X-Cache"))
		}
	}
}

// TestDemotionKeepsWorkingSetServableFromDisk pins the tier-transition
// semantics: a memory budget far below the working set keeps every
// object servable — CLOCK victims demote to disk and come back through
// a validating 304 that reuses the stored body, so no object's body is
// ever fetched from the origin twice.
func TestDemotionKeepsWorkingSetServableFromDisk(t *testing.T) {
	var mu sync.Mutex
	fullFetches := make(map[string]int)
	lastMod := time.Now().UTC().Add(-time.Hour).Truncate(time.Second)
	body := func(path string) string {
		b := fmt.Sprintf("payload of %s ", path)
		for len(b) < 1024 {
			b += "x"
		}
		return b
	}
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Last-Modified", lastMod.Format(http.TimeFormat))
		if ims := r.Header.Get("If-Modified-Since"); ims != "" {
			if since, err := http.ParseTime(ims); err == nil && !lastMod.After(since) {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		mu.Lock()
		fullFetches[r.URL.Path]++
		mu.Unlock()
		fmt.Fprint(w, body(r.URL.Path))
	})

	// ~1.5KiB per resident entry; 3200 bytes keeps roughly two of the
	// eight objects in memory at any instant.
	px, _ := newHandlerProxy(t, handler, Config{
		MaxBytes:     3200,
		Shards:       2,
		Bounds:       noRefreshBounds,
		DefaultDelta: time.Hour,
		DiskDir:      t.TempDir(),
	})

	const n = 8
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("/w/%d", i)
		if code, got, _ := proxyGet(t, px, k); code != 200 || got != body(k) {
			t.Fatalf("first pass %s: %d (body len %d)", k, code, len(got))
		}
	}
	checkStoreInvariants(t, px)
	ds := px.DiskStats()
	if ds.Demotions == 0 {
		t.Fatal("no demotions: the byte budget did not displace anything")
	}

	// Second pass: everything is still servable — resident keys HIT,
	// demoted keys promote from disk via 304 — and the origin never
	// re-sends a body.
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("/w/%d", i)
		code, got, hdr := proxyGet(t, px, k)
		if code != 200 || got != body(k) {
			t.Fatalf("second pass %s: %d (body len %d)", k, code, len(got))
		}
		if xc := hdr.Get("X-Cache"); xc != "HIT" && xc != "MISS" {
			t.Errorf("second pass %s labeled %q", k, xc)
		}
	}
	checkStoreInvariants(t, px)
	if ds = px.DiskStats(); ds.Promotions == 0 {
		t.Error("no promotions: the second pass should have come back from disk")
	}
	mu.Lock()
	for k, c := range fullFetches {
		if c != 1 {
			t.Errorf("%s fetched in full %d times, want 1 (revalidation must 304)", k, c)
		}
	}
	if len(fullFetches) != n {
		t.Errorf("origin saw %d distinct objects, want %d", len(fullFetches), n)
	}
	mu.Unlock()

	// Two-tier agreement: after the write-behind drains, every object
	// lives in memory, on disk, or both — none were lost.
	px.FlushDisk()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("/w/%d", i)
		_, onDisk := px.disk.Meta(k)
		if px.lookup(k) == nil && !onDisk {
			t.Errorf("%s vanished from both tiers", k)
		}
	}
}

// TestGraceWindowSkipsStaleRecords: records whose last validation is
// older than DiskGrace must not come back warm (that would silently
// widen Δt); they stay demoted and are promoted through a validating
// fetch on demand.
func TestGraceWindowSkipsStaleRecords(t *testing.T) {
	clk := newSimClock()
	dir := t.TempDir()

	origin := webserver.NewOrigin(webserver.WithClock(clk.Now))
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	u, err := url.Parse(originSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	origin.Set("/stale", []byte("stale body"), "text/plain")

	cfg := Config{
		Origin:       u,
		Clock:        clk.Now,
		PollWorkers:  1,
		DefaultDelta: 30 * time.Second,
		Bounds:       core.TTRBounds{Min: 10 * time.Second, Max: 10 * time.Minute},
		DiskDir:      dir,
		DiskGrace:    time.Minute,
	}
	px1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	px1.Start()
	clk.AdvanceTo(clk.base.Add(admissionPhase))
	if code, _, _ := proxyGet(t, px1, "/stale"); code != 200 {
		t.Fatalf("admission: %d", code)
	}
	quiesceSim(t, px1, clk)
	px1.Close()

	// Ten minutes of downtime blow way past the one-minute grace.
	clk.AdvanceTo(clk.Now().Add(10 * time.Minute))

	px2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer px2.Close()
	px2.Start()
	if got := px2.Len(); got != 0 {
		t.Fatalf("%d objects rehydrated past the grace window, want 0", got)
	}
	if got := px2.DiskStats().Rehydrated; got != 0 {
		t.Errorf("DiskStats.Rehydrated = %d, want 0", got)
	}

	// On demand the record promotes — validated first, so the serve is a
	// MISS (never GRACE) and Δt holds from the first byte.
	code, body, hdr := proxyGet(t, px2, "/stale")
	if code != 200 || body != "stale body" {
		t.Fatalf("promote-on-demand: %d %q", code, body)
	}
	if xc := hdr.Get("X-Cache"); xc != "MISS" {
		t.Errorf("promoted serve labeled %q, want MISS", xc)
	}
	if got := px2.DiskStats().Promotions; got != 1 {
		t.Errorf("DiskStats.Promotions = %d, want 1", got)
	}
	if got, _, _ := proxyGet(t, px2, "/stale"); got != 200 {
		t.Errorf("re-serve after promotion: %d", got)
	}
}

// TestEvictPurgesBothTiers: admin eviction must not leave a disk record
// behind (the next request would resurrect supposedly-evicted content),
// and its return value distinguishes residency in either tier from a
// miss on both.
func TestEvictPurgesBothTiers(t *testing.T) {
	var mu sync.Mutex
	fetches := 0
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		fetches++
		mu.Unlock()
		fmt.Fprint(w, "evictable")
	})
	px, _ := newHandlerProxy(t, handler, Config{
		Bounds:       noRefreshBounds,
		DefaultDelta: time.Hour,
		DiskDir:      t.TempDir(),
	})

	if code, _, _ := proxyGet(t, px, "/e/1"); code != 200 {
		t.Fatal("admission failed")
	}
	px.FlushDisk()
	if _, ok := px.disk.Meta("/e/1"); !ok {
		t.Fatal("admitted object never reached the disk tier")
	}

	if !px.Evict("/e/1") {
		t.Fatal("Evict(/e/1) reported nothing to evict")
	}
	if _, ok := px.disk.Meta("/e/1"); ok {
		t.Error("disk record survived the eviction")
	}
	if px.Evict("/e/1") {
		t.Error("second Evict reported success on a key gone from both tiers")
	}
	if px.Evict("/never-seen") {
		t.Error("Evict of a never-cached key reported success")
	}

	// The re-request is a cold fetch — nothing resurrects from disk.
	if code, body, _ := proxyGet(t, px, "/e/1"); code != 200 || body != "evictable" {
		t.Fatalf("re-request after eviction: %d %q", code, body)
	}
	mu.Lock()
	if fetches != 2 {
		t.Errorf("origin fetched %d times, want 2 (evicted content must not come back from disk)", fetches)
	}
	mu.Unlock()
	px.FlushDisk()
	if px.DiskStats().Deletes == 0 {
		t.Error("DiskStats.Deletes = 0 after a two-tier eviction")
	}
}
