package webproxy

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"broadway/internal/core"
	"broadway/internal/httpx"
	"broadway/internal/webserver"
)

// Long bounds: no background refresh runs during a test, so residency is
// driven purely by the request sequence and the CLOCK sweep.
var noRefreshBounds = core.TTRBounds{Min: time.Hour, Max: 2 * time.Hour}

// TestChurnKeepsHotSetResident churns an adversarial cold key stream at
// 4x capacity through the cache while a hot set is re-requested
// continuously. The CLOCK access bit must keep the hot set resident: its
// steady-state hit ratio stays above a floor even though every cold
// admission evicts somebody.
func TestChurnKeepsHotSetResident(t *testing.T) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "body for "+r.URL.Path)
	})
	px, _ := newHandlerProxy(t, handler, Config{
		MaxObjects:   64,
		Shards:       8,
		Bounds:       noRefreshBounds,
		DefaultDelta: time.Hour,
	})

	const (
		hotKeys  = 16
		coldKeys = 256 // 4x the 64-object capacity
		rounds   = 2000
	)
	hot := make([]string, hotKeys)
	for i := range hot {
		hot[i] = fmt.Sprintf("/hot/%d", i)
	}
	// Warm the hot set.
	for _, h := range hot {
		proxyGet(t, px, h)
	}

	var hotHits, hotRequests int
	for i := 0; i < rounds; i++ {
		proxyGet(t, px, fmt.Sprintf("/cold/%d", i%coldKeys))
		_, _, hdr := proxyGet(t, px, hot[i%hotKeys])
		hotRequests++
		if hdr.Get("X-Cache") == "HIT" {
			hotHits++
		}
	}

	ratio := float64(hotHits) / float64(hotRequests)
	if ratio < 0.5 {
		t.Errorf("hot-set hit ratio %.3f under churn, want >= 0.5", ratio)
	}
	if got := px.Len(); got != 64 {
		t.Errorf("resident objects = %d, want full capacity 64", got)
	}
	cs := px.CacheStats()
	if cs.Evictions == 0 {
		t.Error("no evictions recorded; the cold stream should churn the cache")
	}
	if cs.Capped != 0 {
		t.Errorf("CacheStats.Capped = %d under EvictClock, want 0", cs.Capped)
	}
}

// TestRotating1000KeyWorkloadStillCaches is the acceptance scenario for
// the seed bug (permanent refusal of key #65 onward): a proxy capped at
// 64 objects serving a rotating 1,000-key workload must maintain a
// nonzero steady-state hit ratio on a recurring hot subset, and a key
// far beyond the cap must be admitted — request it twice and the second
// is a HIT.
func TestRotating1000KeyWorkloadStillCaches(t *testing.T) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "v:"+r.URL.Path)
	})
	px, _ := newHandlerProxy(t, handler, Config{
		MaxObjects:   64,
		Shards:       8,
		Bounds:       noRefreshBounds,
		DefaultDelta: time.Hour,
	})

	// The seed behavior: once 64 objects were resident, key #65 onward
	// was never cached again. Admit well past the cap, then check a
	// brand-new key still becomes resident.
	for i := 0; i < 200; i++ {
		proxyGet(t, px, fmt.Sprintf("/rot/%d", i))
	}
	if _, _, hdr := proxyGet(t, px, "/fresh"); hdr.Get("X-Cache") != "MISS" {
		t.Fatalf("first /fresh X-Cache = %q", hdr.Get("X-Cache"))
	}
	if _, _, hdr := proxyGet(t, px, "/fresh"); hdr.Get("X-Cache") != "HIT" {
		t.Errorf("second /fresh X-Cache = %q, want HIT: admission is still ossified", hdr.Get("X-Cache"))
	}

	// Rotating 1,000-key workload with a recurring hot subset of 8.
	var hotHits, hotRequests int
	for i := 0; i < 3000; i++ {
		proxyGet(t, px, fmt.Sprintf("/rot/%d", i%1000))
		if i%3 == 0 {
			_, _, hdr := proxyGet(t, px, fmt.Sprintf("/pin/%d", i%8))
			if i > 100 { // past warm-up
				hotRequests++
				if hdr.Get("X-Cache") == "HIT" {
					hotHits++
				}
			}
		}
	}
	if hotHits == 0 {
		t.Errorf("hot subset hit ratio is zero across %d steady-state requests", hotRequests)
	}
}

// TestClockPenalizesUngroupedVictimsFirst drives the per-shard CLOCK
// sweep deterministically at the store level: with every access bit
// clear, the sweep must spend the grouped entries' extra lives and evict
// the ungrouped residents first.
func TestClockPenalizesUngroupedVictimsFirst(t *testing.T) {
	s := newStore(1)
	mk := func(key, group string) *entry {
		e := &entry{key: key, group: group}
		e.size.Store(100)
		return e
	}
	seed := []*entry{
		mk("/a", ""), mk("/b", "news"), mk("/c", ""), mk("/d", "news"),
	}
	for _, e := range seed {
		if _, inserted, victims, capped := s.put(e.key, e, 4, -1, true); !inserted || len(victims) != 0 || capped {
			t.Fatalf("seeding %s: inserted=%v victims=%d capped=%v", e.key, inserted, len(victims), capped)
		}
	}
	// Clear the admission-grace access bits so the sweep sees a cold
	// cache where only group membership differentiates the candidates.
	for _, e := range seed {
		e.refbit.Store(false)
	}

	_, _, victims, _ := s.put("/e", mk("/e", ""), 4, -1, true)
	if len(victims) != 1 || victims[0].key != "/a" {
		t.Fatalf("first eviction: victims = %v, want exactly /a (ungrouped)", keysOf(victims))
	}
	_, _, victims, _ = s.put("/f", mk("/f", ""), 4, -1, true)
	if len(victims) != 1 || victims[0].key != "/c" {
		t.Fatalf("second eviction: victims = %v, want exactly /c (ungrouped)", keysOf(victims))
	}
	for _, key := range []string{"/b", "/d"} {
		if s.get(key) == nil {
			t.Errorf("group member %s was evicted while ungrouped residents existed", key)
		}
	}
	for _, v := range victims {
		if !v.evicted.Load() {
			t.Errorf("victim %s not marked with the eviction token", v.key)
		}
	}
}

// TestGroupLivesReplenishOnAccess pins the durability of the group
// penalty: a group member whose extra lives were spent gets them back
// when the sweep consumes a fresh access bit, so a warm group member
// never decays into an ungrouped-equivalent victim.
func TestGroupLivesReplenishOnAccess(t *testing.T) {
	s := newStore(1)
	mk := func(key, group string) *entry {
		e := &entry{key: key, group: group}
		e.size.Store(100)
		return e
	}
	grouped := mk("/g", "news")
	cold := mk("/cold", "")
	for _, e := range []*entry{grouped, cold} {
		s.put(e.key, e, 2, -1, true)
	}
	sh := &s.shards[0]
	// Exhaust the group member's shield, then hit it.
	sh.mu.Lock()
	grouped.lives = 0
	sh.mu.Unlock()
	grouped.refbit.Store(true)
	cold.refbit.Store(false)

	_, _, victims, _ := s.put("/new", mk("/new", ""), 2, -1, true)
	if len(victims) != 1 || victims[0].key != "/cold" {
		t.Fatalf("victims = %v, want /cold", keysOf(victims))
	}
	sh.mu.Lock()
	lives := grouped.lives
	sh.mu.Unlock()
	if lives != groupLives {
		t.Errorf("accessed group member's lives = %d after sweep, want replenished to %d", lives, groupLives)
	}
}

// TestByteBudgetEviction drives replacement purely by MaxBytes: objects
// of known size churn through a byte budget and the ledger never exceeds
// it at quiescence, while an object larger than the whole budget is
// served uncached instead of wiping the cache.
func TestByteBudgetEviction(t *testing.T) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/huge") {
			io.WriteString(w, strings.Repeat("H", 64<<10))
			return
		}
		io.WriteString(w, strings.Repeat("x", 4096))
	})
	const budget = 4 * (4096 + 700) // room for ~4 small objects
	px, _ := newHandlerProxy(t, handler, Config{
		MaxBytes:     budget,
		Shards:       2,
		Bounds:       noRefreshBounds,
		DefaultDelta: time.Hour,
	})

	for i := 0; i < 12; i++ {
		proxyGet(t, px, fmt.Sprintf("/obj/%d", i))
	}
	if rb := px.ResidentBytes(); rb > budget {
		t.Errorf("resident bytes %d exceed budget %d at quiescence", rb, budget)
	}
	if got := px.Len(); got == 0 || got > 4 {
		t.Errorf("resident objects = %d, want 1..4 under the byte budget", got)
	}
	if cs := px.CacheStats(); cs.Evictions == 0 {
		t.Error("byte-budget churn recorded no evictions")
	}

	// A single object bigger than the whole budget: served, not cached.
	before := px.Len()
	if _, _, hdr := proxyGet(t, px, "/huge"); hdr.Get("X-Cache") != "BYPASS" {
		t.Errorf("oversized object X-Cache = %q, want BYPASS", hdr.Get("X-Cache"))
	}
	if got := px.Len(); got != before {
		t.Errorf("oversized admission changed residency %d -> %d", before, got)
	}
	if cs := px.CacheStats(); cs.Capped == 0 {
		t.Error("oversized object not counted as capped")
	}
}

// TestGroupMembersSurviveChurnTogether admits a full consistency group
// plus ungrouped filler into one shard, then churns fresh keys through:
// the victim scan must take the ungrouped residents and leave the group
// intact (members survive together, as designed).
func TestGroupMembersSurviveChurnTogether(t *testing.T) {
	origin := webserver.NewOrigin()
	groupPaths := []string{"/g/1", "/g/2", "/g/3", "/g/4"}
	for _, p := range groupPaths {
		origin.Set(p, []byte("grouped "+p), "text/plain")
		origin.SetTolerances(p, httpx.Tolerances{Group: "bundle"})
	}
	for i := 0; i < 4; i++ {
		origin.Set(fmt.Sprintf("/u/%d", i), []byte("filler"), "text/plain")
	}
	for i := 0; i < 4; i++ {
		origin.Set(fmt.Sprintf("/churn/%d", i), []byte("churn"), "text/plain")
	}
	px, _ := newHandlerProxy(t, origin, Config{
		MaxObjects:   8,
		Shards:       1,
		Bounds:       noRefreshBounds,
		DefaultDelta: time.Hour,
	})

	for _, p := range groupPaths {
		proxyGet(t, px, p)
	}
	for i := 0; i < 4; i++ {
		proxyGet(t, px, fmt.Sprintf("/u/%d", i))
	}
	// Cache full: 4 grouped + 4 ungrouped. Churn 4 fresh keys through.
	for i := 0; i < 4; i++ {
		proxyGet(t, px, fmt.Sprintf("/churn/%d", i))
	}

	for _, p := range groupPaths {
		if st := px.ObjectStats(p); !st.Cached || !st.Grouped {
			t.Errorf("group member %s: stats %+v, want cached and grouped", p, st)
		}
	}
	for i := 0; i < 4; i++ {
		if st := px.ObjectStats(fmt.Sprintf("/u/%d", i)); st.Cached {
			t.Errorf("ungrouped filler /u/%d survived while group members were at risk", i)
		}
	}
	if cs := px.CacheStats(); cs.Evictions != 4 {
		t.Errorf("evictions = %d, want 4", cs.Evictions)
	}
}

// TestEmptyGroupStateIsRetired pins the group-map leak fix: evicting
// every member of a group removes its groupState from the proxy, so
// churn over distinct group names cannot grow memory without bound —
// and a re-admission under the same name builds a fresh state.
func TestEmptyGroupStateIsRetired(t *testing.T) {
	origin := webserver.NewOrigin()
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("/grp/%d", i)
		origin.Set(p, []byte("member"), "text/plain")
		origin.SetTolerances(p, httpx.Tolerances{Group: fmt.Sprintf("g%d", i)})
	}
	px, _ := newHandlerProxy(t, origin, Config{
		Bounds:       noRefreshBounds,
		DefaultDelta: time.Hour,
	})
	for i := 0; i < 8; i++ {
		proxyGet(t, px, fmt.Sprintf("/grp/%d", i))
	}
	px.groupMu.RLock()
	before := len(px.groups)
	px.groupMu.RUnlock()
	if before != 8 {
		t.Fatalf("group states after admission = %d, want 8", before)
	}
	for i := 0; i < 8; i++ {
		px.Evict(fmt.Sprintf("/grp/%d", i))
	}
	px.groupMu.RLock()
	after := len(px.groups)
	px.groupMu.RUnlock()
	if after != 0 {
		t.Errorf("group states after evicting all members = %d, want 0 (leak)", after)
	}
	// Same group name again: a fresh state is created and usable.
	proxyGet(t, px, "/grp/3")
	if st := px.ObjectStats("/grp/3"); !st.Cached || !st.Grouped {
		t.Errorf("re-admitted group member stats %+v", st)
	}
}

// TestEvictedThenRerequestedSingleFetch pins the singleflight guarantee
// across an eviction: once an object is evicted, a concurrent herd of
// re-requests produces exactly one new origin fetch.
func TestEvictedThenRerequestedSingleFetch(t *testing.T) {
	var admissions atomic.Int64 // fetches without If-Modified-Since
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/target" && r.Header.Get("If-Modified-Since") == "" {
			admissions.Add(1)
			time.Sleep(50 * time.Millisecond) // hold the herd at the door
		}
		io.WriteString(w, "target body")
	})
	px, _ := newHandlerProxy(t, handler, Config{
		Bounds:       noRefreshBounds,
		DefaultDelta: time.Hour,
	})

	proxyGet(t, px, "/target")
	if got := admissions.Load(); got != 1 {
		t.Fatalf("admission fetches after warm-up = %d, want 1", got)
	}
	if !px.Evict("/target") {
		t.Fatal("Evict(/target) found nothing resident")
	}
	if px.Evict("/target") {
		t.Error("second Evict of the same key reported success")
	}
	if st := px.ObjectStats("/target"); st.Cached {
		t.Fatalf("evicted object still reports cached: %+v", st)
	}

	const herd = 32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			code, body, _ := proxyGet(t, px, "/target")
			if code != http.StatusOK || body != "target body" {
				t.Errorf("re-request: status %d body %q", code, body)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := admissions.Load(); got != 2 {
		t.Errorf("admission fetches after evict+herd = %d, want exactly 2", got)
	}
	if st := px.ObjectStats("/target"); !st.Cached {
		t.Error("re-requested object was not re-admitted")
	}
}

// TestEvictionUnwindsSchedulerState is the invariant battery: after
// evicting N objects the refresh heap holds no entries for them (no
// ghost polls reach the origin), the byte ledger returns to zero when
// the cache is emptied, and the object count never drifts from the sum
// of the shard map (and CLOCK ring) sizes.
func TestEvictionUnwindsSchedulerState(t *testing.T) {
	var polls atomic.Int64
	var frozen atomic.Bool // set once the cache is emptied
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if frozen.Load() {
			polls.Add(1)
		}
		io.WriteString(w, "body "+r.URL.Path)
	})
	// Short TTRs: ghost schedule entries would poll within milliseconds.
	px, _ := newHandlerProxy(t, handler, Config{
		Shards: 4,
		Bounds: core.TTRBounds{Min: 10 * time.Millisecond, Max: 50 * time.Millisecond},
	})

	const n = 24
	for i := 0; i < n; i++ {
		proxyGet(t, px, fmt.Sprintf("/obj/%d", i))
	}
	checkStoreInvariants(t, px)

	for i := 0; i < n; i++ {
		if !px.Evict(fmt.Sprintf("/obj/%d", i)) {
			t.Fatalf("Evict(/obj/%d) found nothing", i)
		}
	}

	if got := px.Len(); got != 0 {
		t.Errorf("resident objects after emptying = %d, want 0", got)
	}
	if rb := px.ResidentBytes(); rb != 0 {
		t.Errorf("byte ledger after emptying = %d, want 0", rb)
	}
	px.schedMu.Lock()
	heapLen := px.schedule.Len()
	px.schedMu.Unlock()
	if heapLen != 0 {
		t.Errorf("refresh heap still holds %d items after evicting every object", heapLen)
	}
	checkStoreInvariants(t, px)

	// No ghost polls: nothing may hit the origin once the cache is
	// empty, even across several TTR periods. A fetch that was already
	// in flight when its entry was evicted is not a ghost schedule
	// entry (the heap emptiness above covers those), so let stragglers
	// land before arming the detector.
	time.Sleep(50 * time.Millisecond)
	frozen.Store(true)
	time.Sleep(300 * time.Millisecond)
	if got := polls.Load(); got != 0 {
		t.Errorf("%d origin polls after every object was evicted (ghost schedule entries)", got)
	}
}

// TestConcurrentChurnInvariants hammers admission and eviction from many
// goroutines over a tiny cache, then verifies at quiescence that the
// count, the byte ledger, the shard maps, the CLOCK rings, and the
// refresh heap all agree. Run under -race this exercises the put/evict
// and unwind paths against each other.
func TestConcurrentChurnInvariants(t *testing.T) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "churn "+r.URL.RawQuery)
	})
	px, _ := newHandlerProxy(t, handler, Config{
		MaxObjects:   16,
		Shards:       4,
		Bounds:       noRefreshBounds,
		DefaultDelta: time.Hour,
	})

	const goroutines = 8
	const requests = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				// 64 distinct keys over a 16-object cache: constant
				// replacement, frequent cross-goroutine collisions.
				proxyGet(t, px, fmt.Sprintf("/k?i=%d", (g*37+i)%64))
				if i%16 == 0 {
					px.Evict(fmt.Sprintf("/k?i=%d", i%64))
				}
			}
		}(g)
	}
	wg.Wait()

	checkStoreInvariants(t, px)
	if got := px.Len(); got > 16 {
		t.Errorf("resident objects = %d, exceeds MaxObjects 16 at quiescence", got)
	}
	px.schedMu.Lock()
	heapLen := px.schedule.Len()
	px.schedMu.Unlock()
	if heapLen != px.Len() {
		t.Errorf("refresh heap holds %d items for %d residents", heapLen, px.Len())
	}
}

// TestRefreshGrowthReenforcesByteBudget pins fix #1 from review: when a
// background refresh grows cached bodies past MaxBytes, the budget is
// re-enforced by evicting residents — not only at admission time.
func TestRefreshGrowthReenforcesByteBudget(t *testing.T) {
	var grown atomic.Bool
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 512
		if grown.Load() {
			n = 8192
		}
		io.WriteString(w, strings.Repeat("b", n))
	})
	const budget = 6 * (512 + 700) // six small objects fit comfortably
	px, _ := newHandlerProxy(t, handler, Config{
		MaxBytes: budget,
		Shards:   2,
		Bounds:   core.TTRBounds{Min: 10 * time.Millisecond, Max: 50 * time.Millisecond},
	})
	for i := 0; i < 6; i++ {
		proxyGet(t, px, fmt.Sprintf("/grow/%d", i))
	}
	if rb := px.ResidentBytes(); rb > budget {
		t.Fatalf("resident bytes %d over budget %d before growth", rb, budget)
	}

	// Bodies now refresh to 16x their size. No admissions happen —
	// only background polls — yet the ledger must come back under
	// budget via refresh-time shrink.
	grown.Store(true)
	ok := waitFor(t, 3*time.Second, func() bool {
		return px.CacheStats().Evictions > 0 && px.ResidentBytes() <= budget
	})
	if !ok {
		t.Errorf("ledger stuck at %d (budget %d, evictions %d): refresh growth not re-enforced",
			px.ResidentBytes(), budget, px.CacheStats().Evictions)
	}
	checkStoreInvariants(t, px)
}

// TestOversizedRefreshDoesNotWipeCache pins the ordering of the
// refresh-time budget enforcement: when one body grows past the whole
// MaxBytes budget, that object alone is evicted — the shrink loop must
// not drain every other resident first in a futile attempt to fit it.
func TestOversizedRefreshDoesNotWipeCache(t *testing.T) {
	var grown atomic.Bool
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/big" && grown.Load() {
			io.WriteString(w, strings.Repeat("B", 16384))
			return
		}
		io.WriteString(w, strings.Repeat("s", 512))
	})
	const budget = 8 * (512 + 700)
	px, _ := newHandlerProxy(t, handler, Config{
		MaxBytes: budget,
		Shards:   2,
		Bounds:   core.TTRBounds{Min: 10 * time.Millisecond, Max: 50 * time.Millisecond},
	})
	for i := 0; i < 5; i++ {
		proxyGet(t, px, fmt.Sprintf("/small/%d", i))
	}
	proxyGet(t, px, "/big")

	grown.Store(true)
	ok := waitFor(t, 3*time.Second, func() bool {
		return !px.ObjectStats("/big").Cached
	})
	if !ok {
		t.Fatal("oversized-on-refresh object was never evicted")
	}
	// Let a few more refresh cycles run: the small objects must remain.
	time.Sleep(150 * time.Millisecond)
	for i := 0; i < 5; i++ {
		if st := px.ObjectStats(fmt.Sprintf("/small/%d", i)); !st.Cached {
			t.Errorf("/small/%d was collateral damage of the oversized refresh", i)
		}
	}
	if rb := px.ResidentBytes(); rb > budget {
		t.Errorf("ledger %d over budget %d after oversize eviction", rb, budget)
	}
	checkStoreInvariants(t, px)
}

// TestEvictedPairSurvivorUnpairsAndRepairs pins fix #3 from review:
// evicting half of a partitioned M_v pair returns the widow to an
// individual policy (paired=false) so a later value member can pair
// with it again.
func TestEvictedPairSurvivorUnpairsAndRepairs(t *testing.T) {
	origin := webserver.NewOrigin()
	for _, p := range []string{"/quote/a", "/quote/b", "/quote/c"} {
		origin.Set(p, []byte("100.00"), "text/plain")
		origin.SetTolerances(p, httpx.Tolerances{ValueDelta: 0.5, Group: "quotes"})
	}
	px, _ := newHandlerProxy(t, origin, Config{
		Bounds:       noRefreshBounds,
		DefaultDelta: time.Hour,
	})

	proxyGet(t, px, "/quote/a")
	proxyGet(t, px, "/quote/b")
	paired := func(key string) bool {
		e := px.lookup(key)
		if e == nil {
			t.Fatalf("%s not resident", key)
		}
		e.mu.RLock()
		defer e.mu.RUnlock()
		return e.paired
	}
	if !paired("/quote/a") || !paired("/quote/b") {
		t.Fatal("first two value members did not pair")
	}

	if !px.Evict("/quote/b") {
		t.Fatal("Evict(/quote/b) found nothing")
	}
	if paired("/quote/a") {
		t.Error("widowed pair survivor still marked paired; it would poll a tightened share forever")
	}

	proxyGet(t, px, "/quote/c")
	if !paired("/quote/a") || !paired("/quote/c") {
		t.Error("widowed survivor did not re-pair with the next value member")
	}
}

// checkStoreInvariants asserts the redundant store bookkeeping agrees:
// count == sum of shard map sizes == sum of ring lengths, and the byte
// ledger equals the sum of resident entry sizes.
func checkStoreInvariants(t *testing.T, px *Proxy) {
	t.Helper()
	var mapSum, ringSum int
	var byteSum int64
	for i := range px.store.shards {
		sh := &px.store.shards[i]
		sh.mu.RLock()
		mapSum += len(sh.entries)
		ringSum += len(sh.ring)
		for _, e := range sh.entries {
			byteSum += e.size.Load()
			if e.evicted.Load() {
				t.Errorf("resident entry %s carries the eviction token", e.key)
			}
		}
		for _, e := range sh.ring {
			if sh.entries[e.key] != e {
				t.Errorf("ring entry %s missing from its shard map", e.key)
			}
		}
		sh.mu.RUnlock()
	}
	if count := px.store.len(); count != mapSum || count != ringSum {
		t.Errorf("count drift: count=%d shard maps=%d rings=%d", count, mapSum, ringSum)
	}
	if ledger := px.store.residentBytes(); ledger != byteSum {
		t.Errorf("byte ledger drift: ledger=%d sum of entry sizes=%d", ledger, byteSum)
	}
}

func keysOf(entries []*entry) []string {
	keys := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = e.key
	}
	return keys
}

// TestStoreInvariantsAcrossDemotePromoteEvictCycles extends the drift
// checks to the disk tier: many rounds of admissions beyond the byte
// budget (demotions), re-requests of displaced keys (promotions), and
// interleaved admin evictions must leave the shard maps, CLOCK rings,
// and byte ledger agreeing after every round — and an evicted key gone
// from both tiers while every other key survives in at least one.
func TestStoreInvariantsAcrossDemotePromoteEvictCycles(t *testing.T) {
	lastMod := time.Now().UTC().Add(-time.Hour).Truncate(time.Second)
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Last-Modified", lastMod.Format(http.TimeFormat))
		if ims := r.Header.Get("If-Modified-Since"); ims != "" {
			if since, err := http.ParseTime(ims); err == nil && !lastMod.After(since) {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		body := "cycle body for " + r.URL.Path
		for len(body) < 512 {
			body += "."
		}
		io.WriteString(w, body)
	})
	// ~1KiB per resident entry against a 4KiB budget: every round of
	// admissions displaces most of the previous round to disk.
	px, _ := newHandlerProxy(t, handler, Config{
		MaxBytes:     4096,
		Shards:       4,
		Bounds:       noRefreshBounds,
		DefaultDelta: time.Hour,
		DiskDir:      t.TempDir(),
	})

	const keys = 24
	key := func(i int) string { return fmt.Sprintf("/cycle/%d", i) }
	evicted := make(map[string]bool)
	for round := 0; round < 6; round++ {
		// Admit/promote a sliding window of keys (wrapping, so later
		// rounds re-request keys earlier rounds demoted).
		for i := 0; i < keys; i++ {
			k := key((round*7 + i) % keys)
			if evicted[k] {
				continue
			}
			if code, _, _ := proxyGet(t, px, k); code != 200 {
				t.Fatalf("round %d: GET %s = %d", round, k, code)
			}
		}
		// Evict one resident and one (likely) demoted key each round.
		for _, k := range []string{key(round), key(keys - 1 - round)} {
			if !evicted[k] && !px.Evict(k) {
				t.Errorf("round %d: Evict(%s) found nothing in either tier", round, k)
			}
			evicted[k] = true
		}
		checkStoreInvariants(t, px)
	}

	px.FlushDisk()
	for i := 0; i < keys; i++ {
		k := key(i)
		_, onDisk := px.disk.Meta(k)
		resident := px.lookup(k) != nil
		if evicted[k] {
			if resident || onDisk {
				t.Errorf("%s evicted but still present (resident=%v disk=%v)", k, resident, onDisk)
			}
		} else if !resident && !onDisk {
			t.Errorf("%s lost from both tiers", k)
		}
	}
	ds := px.DiskStats()
	if ds.Demotions == 0 || ds.Promotions == 0 || ds.Deletes == 0 {
		t.Errorf("cycle stats: demotions=%d promotions=%d deletes=%d, want all nonzero",
			ds.Demotions, ds.Promotions, ds.Deletes)
	}
	checkStoreInvariants(t, px)
}
