package webproxy

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"broadway/internal/core"
	"broadway/internal/webserver"
)

// newHandlerProxy wires an arbitrary origin handler behind a started
// proxy, for tests that need request-level control the stock webserver
// origin does not offer (stalling, failure injection, query echoing).
func newHandlerProxy(t *testing.T, h http.Handler, cfg Config) (*Proxy, *httptest.Server) {
	t.Helper()
	originSrv := httptest.NewServer(h)
	t.Cleanup(originSrv.Close)
	u, err := url.Parse(originSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Origin = u
	if cfg.Bounds == (core.TTRBounds{}) {
		cfg.Bounds = core.TTRBounds{Min: 20 * time.Millisecond, Max: 500 * time.Millisecond}
	}
	if cfg.DefaultDelta == 0 {
		cfg.DefaultDelta = 20 * time.Millisecond
	}
	px, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	px.Start()
	t.Cleanup(px.Close)
	return px, originSrv
}

// get performs one request directly against the proxy handler.
func proxyGet(t *testing.T, px *Proxy, target string) (int, string, http.Header) {
	t.Helper()
	rec := httptest.NewRecorder()
	px.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	res := rec.Result()
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	return res.StatusCode, string(body), res.Header
}

// TestConcurrentServeStress hammers ServeHTTP across many objects (and
// therefore shards) while background refreshes are active and the origin
// keeps updating. Run under -race this exercises every lock in the hit
// path, the admission path, and the refresh engine at once.
func TestConcurrentServeStress(t *testing.T) {
	origin := webserver.NewOrigin()
	const objects = 32
	for i := 0; i < objects; i++ {
		origin.Set(fmt.Sprintf("/obj/%d", i), []byte(fmt.Sprintf("v1 of %d", i)), "text/plain")
	}
	px, _ := newHandlerProxy(t, origin, Config{
		Shards:      8,
		PollWorkers: 4,
		Bounds:      core.TTRBounds{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond},
	})

	stop := make(chan struct{})
	var updaterWG sync.WaitGroup
	updaterWG.Add(1)
	go func() {
		defer updaterWG.Done()
		rev := 2
		for {
			select {
			case <-stop:
				return
			default:
			}
			origin.Set(fmt.Sprintf("/obj/%d", rev%objects), []byte(fmt.Sprintf("v%d", rev)), "text/plain")
			rev++
			time.Sleep(time.Millisecond)
		}
	}()

	const goroutines = 16
	const requests = 150
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < requests; i++ {
				path := fmt.Sprintf("/obj/%d", rng.Intn(objects))
				code, body, _ := proxyGet(t, px, path)
				if code != http.StatusOK {
					errs <- fmt.Errorf("GET %s: status %d", path, code)
					return
				}
				if !strings.HasPrefix(body, "v") {
					errs <- fmt.Errorf("GET %s: body %q", path, body)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(stop)
	updaterWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if got := px.Len(); got != objects {
		t.Errorf("cached objects = %d, want %d", got, objects)
	}
}

// TestThunderingHerdSingleOriginFetch asserts that N concurrent first
// requests for one object produce exactly one origin fetch (singleflight
// admission). Admission fetches are unconditional; refresh polls always
// carry If-Modified-Since, so counting IMS-less requests isolates
// admissions even with the refresher running.
func TestThunderingHerdSingleOriginFetch(t *testing.T) {
	var admissions atomic.Int64
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("If-Modified-Since") == "" {
			admissions.Add(1)
			time.Sleep(100 * time.Millisecond) // hold the herd at the door
		}
		w.Header().Set("Last-Modified", time.Now().UTC().Format(http.TimeFormat))
		io.WriteString(w, "herd body")
	})
	px, _ := newHandlerProxy(t, handler, Config{})

	const n = 40
	var wg sync.WaitGroup
	start := make(chan struct{})
	codes := make([]int, n)
	bodies := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			codes[i], bodies[i], _ = proxyGet(t, px, "/herd")
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK || bodies[i] != "herd body" {
			t.Fatalf("request %d: status %d body %q", i, codes[i], bodies[i])
		}
	}
	if got := admissions.Load(); got != 1 {
		t.Errorf("origin saw %d admission fetches for one object, want 1", got)
	}
}

// TestStalledOriginDoesNotDelayOthers verifies the worker pool isolates
// a hung upstream: while a refresh poll of /slow is blocked inside the
// origin, refreshes of an unrelated object keep running.
func TestStalledOriginDoesNotDelayOthers(t *testing.T) {
	slowStalled := make(chan struct{}) // closed when /slow's refresh poll is inside the handler
	release := make(chan struct{})     // closed at test end to free it
	var once sync.Once
	var rev atomic.Int64
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/slow":
			if r.Header.Get("If-Modified-Since") != "" {
				once.Do(func() { close(slowStalled) })
				<-release
			}
			io.WriteString(w, "slow body")
		case "/fast":
			fmt.Fprintf(w, "fast v%d", rev.Add(1))
		default:
			http.NotFound(w, r)
		}
	})

	const workers = 4
	px, _ := newHandlerProxy(t, handler, Config{
		PollWorkers: workers,
		Bounds:      core.TTRBounds{Min: 20 * time.Millisecond, Max: 100 * time.Millisecond},
		Client:      &http.Client{Timeout: time.Minute},
	})
	defer close(release)

	// The two keys must land on different workers for this test to mean
	// anything; with the chosen names they do.
	if fnv32("/slow")%workers == fnv32("/fast")%workers {
		t.Fatal("test paths share an affinity worker; pick different names")
	}

	if code, _, _ := proxyGet(t, px, "/slow"); code != http.StatusOK {
		t.Fatalf("admit /slow: %d", code)
	}
	if code, _, _ := proxyGet(t, px, "/fast"); code != http.StatusOK {
		t.Fatalf("admit /fast: %d", code)
	}

	select {
	case <-slowStalled:
	case <-time.After(5 * time.Second):
		t.Fatal("/slow refresh poll never started")
	}

	// With /slow's worker wedged, /fast must still accumulate refresh
	// polls (its body changes every poll, so polls keep coming).
	before := px.ObjectStats("/fast").Polls
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if px.ObjectStats("/fast").Polls >= before+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("/fast polls stuck at %d while /slow stalled (want ≥ %d)",
		px.ObjectStats("/fast").Polls, before+3)
}

// TestQueryStringsAreDistinctObjects covers the query-string bugfix:
// /stock?sym=A and /stock?sym=B must be distinct cached objects, the
// query must reach the origin, and parameter order must not fragment the
// cache (canonicalization).
func TestQueryStringsAreDistinctObjects(t *testing.T) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "path=%s query=%s", r.URL.Path, r.URL.Query().Encode())
	})
	px, _ := newHandlerProxy(t, handler, Config{})

	_, bodyA, hdrA := proxyGet(t, px, "/stock?sym=A")
	if bodyA != "path=/stock query=sym=A" {
		t.Errorf("sym=A body = %q", bodyA)
	}
	if hdrA.Get("X-Cache") != "MISS" {
		t.Errorf("first sym=A X-Cache = %q", hdrA.Get("X-Cache"))
	}
	_, bodyB, _ := proxyGet(t, px, "/stock?sym=B")
	if bodyB != "path=/stock query=sym=B" {
		t.Errorf("sym=B body = %q (collapsed into sym=A's object?)", bodyB)
	}
	_, bodyA2, hdrA2 := proxyGet(t, px, "/stock?sym=A")
	if bodyA2 != "path=/stock query=sym=A" || hdrA2.Get("X-Cache") != "HIT" {
		t.Errorf("second sym=A: body=%q X-Cache=%q", bodyA2, hdrA2.Get("X-Cache"))
	}

	// Parameter permutations share one object.
	_, body1, hdr1 := proxyGet(t, px, "/q?a=1&b=2")
	if hdr1.Get("X-Cache") != "MISS" {
		t.Errorf("first permutation X-Cache = %q", hdr1.Get("X-Cache"))
	}
	_, body2, hdr2 := proxyGet(t, px, "/q?b=2&a=1")
	if hdr2.Get("X-Cache") != "HIT" {
		t.Errorf("permuted query X-Cache = %q, want HIT", hdr2.Get("X-Cache"))
	}
	if body1 != body2 {
		t.Errorf("permutations diverged: %q vs %q", body1, body2)
	}
	if st := px.ObjectStats("/stock?sym=A"); !st.Cached || st.Hits != 1 {
		t.Errorf("stats for /stock?sym=A = %+v", st)
	}
	// Accessors canonicalize their argument like ServeHTTP does.
	if st := px.ObjectStats("/q?b=2&a=1"); !st.Cached {
		t.Error("ObjectStats did not canonicalize a permuted query key")
	}
	if _, ok := px.CachedBody("/q?b=2&a=1"); !ok {
		t.Error("CachedBody did not canonicalize a permuted query key")
	}
	// A bare path and an empty query are the same key.
	proxyGet(t, px, "/plain")
	if _, _, hdr := proxyGet(t, px, "/plain?"); hdr.Get("X-Cache") != "HIT" {
		t.Errorf("/plain? X-Cache = %q, want HIT", hdr.Get("X-Cache"))
	}
}

// TestEncodedQuestionMarkInPathIsNotAQuery pins down that a %3F in the
// path stays path data end to end: the cache key must not alias it with
// the query form, and the origin must receive the escaped path.
func TestEncodedQuestionMarkInPathIsNotAQuery(t *testing.T) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "esc=%s query=%s", r.URL.EscapedPath(), r.URL.RawQuery)
	})
	px, _ := newHandlerProxy(t, handler, Config{})

	_, body, _ := proxyGet(t, px, "/report%3Fdaily")
	if body != "esc=/report%3Fdaily query=" {
		t.Errorf("encoded-? path reached origin as %q", body)
	}
	_, body2, hdr2 := proxyGet(t, px, "/report?daily")
	if hdr2.Get("X-Cache") != "MISS" {
		t.Errorf("/report?daily aliased the %%3F entry: X-Cache=%q", hdr2.Get("X-Cache"))
	}
	// Canonicalization re-encodes the bare "daily" flag as "daily=".
	if body2 != "esc=/report query=daily=" {
		t.Errorf("query form reached origin as %q", body2)
	}
}

// TestMalformedQueryKeptVerbatim pins down that a query failing the
// parse/encode round trip is neither collapsed with its well-formed
// cousin nor stripped from the upstream request.
func TestMalformedQueryKeptVerbatim(t *testing.T) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "query=%s", r.URL.RawQuery)
	})
	px, _ := newHandlerProxy(t, handler, Config{})

	_, bodyBad, _ := proxyGet(t, px, "/x?a=%zz&b=1")
	if bodyBad != "query=a=%zz&b=1" {
		t.Errorf("malformed query reached origin as %q (parameters dropped?)", bodyBad)
	}
	_, bodyGood, hdrGood := proxyGet(t, px, "/x?b=1")
	if hdrGood.Get("X-Cache") != "MISS" {
		t.Errorf("/x?b=1 aliased the malformed-query entry: X-Cache=%q", hdrGood.Get("X-Cache"))
	}
	if bodyGood != "query=b=1" {
		t.Errorf("well-formed query reached origin as %q", bodyGood)
	}
}

// TestUpstreamFailureBackoff covers the flapping-origin bugfix: repeated
// refresh failures must back off exponentially instead of hammering the
// origin at InitialTTR forever, and recovery must pick updates back up.
func TestUpstreamFailureBackoff(t *testing.T) {
	var failing atomic.Bool
	var refreshAttempts atomic.Int64
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("If-Modified-Since") != "" {
			refreshAttempts.Add(1)
			if failing.Load() {
				http.Error(w, "flapping", http.StatusInternalServerError)
				return
			}
		}
		w.Header().Set("Last-Modified", time.Now().UTC().Format(http.TimeFormat))
		io.WriteString(w, "recovered body")
	})
	px, _ := newHandlerProxy(t, handler, Config{
		Bounds: core.TTRBounds{Min: 20 * time.Millisecond, Max: time.Second},
	})

	if code, _, _ := proxyGet(t, px, "/flappy"); code != http.StatusOK {
		t.Fatal("admission failed")
	}
	failing.Store(true)
	refreshAttempts.Store(0)
	time.Sleep(700 * time.Millisecond)
	got := refreshAttempts.Load()
	// Without backoff the proxy retries every 20ms: ~35 attempts in the
	// window. With doubling (20, 40, 80, 160, 320 …) it fits ~5.
	if got > 10 {
		t.Errorf("%d refresh attempts against a failing origin in 700ms; backoff missing", got)
	}
	if got < 2 {
		t.Errorf("only %d refresh attempts; retries seem to have stopped entirely", got)
	}

	// Recovery: successful polls resume (only successful refreshes
	// increment the Polls counter beyond the admission fetch).
	failing.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if px.ObjectStats("/flappy").Polls >= 2 {
			if b, ok := px.CachedBody("/flappy"); !ok || string(b) != "recovered body" {
				t.Errorf("cached body after recovery = %q", b)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("polls never resumed after the origin recovered")
}

// TestMaxObjectsCapsAdmission pins the legacy EvictRefuse policy: beyond
// MaxObjects the proxy keeps serving but stops caching and scheduling,
// so a client enumerating query strings cannot grow the store without
// bound. (The default EvictClock policy instead evicts; see
// eviction_test.go.)
func TestMaxObjectsCapsAdmission(t *testing.T) {
	var requests atomic.Int64
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		fmt.Fprintf(w, "query=%s", r.URL.RawQuery)
	})
	px, _ := newHandlerProxy(t, handler, Config{MaxObjects: 3, Eviction: EvictRefuse})

	for i := 0; i < 8; i++ {
		code, body, _ := proxyGet(t, px, fmt.Sprintf("/stock?sym=%d", i))
		if code != http.StatusOK || body != fmt.Sprintf("query=sym=%d", i) {
			t.Fatalf("request %d: status %d body %q", i, code, body)
		}
	}
	if got := px.Len(); got != 3 {
		t.Errorf("cached objects = %d, want the MaxObjects cap of 3", got)
	}
	// Cached keys hit; over-cap keys proxy again on every request, and
	// the refused residency is surfaced as X-Cache: BYPASS and counted.
	if _, _, hdr := proxyGet(t, px, "/stock?sym=0"); hdr.Get("X-Cache") != "HIT" {
		t.Errorf("under-cap object X-Cache = %q, want HIT", hdr.Get("X-Cache"))
	}
	before := requests.Load()
	if _, _, hdr := proxyGet(t, px, "/stock?sym=7"); hdr.Get("X-Cache") != "BYPASS" {
		t.Errorf("over-cap object X-Cache = %q, want BYPASS", hdr.Get("X-Cache"))
	}
	if requests.Load() != before+1 {
		t.Errorf("over-cap object did not reach the origin")
	}
	cs := px.CacheStats()
	if cs.Capped < 5 {
		t.Errorf("CacheStats.Capped = %d, want at least the 5 refused admissions", cs.Capped)
	}
	if cs.Evictions != 0 {
		t.Errorf("CacheStats.Evictions = %d under EvictRefuse, want 0", cs.Evictions)
	}

	// A concurrent burst of distinct keys must not overshoot the cap:
	// the count is reserved atomically, not check-then-act.
	px2, _ := newHandlerProxy(t, handler, Config{MaxObjects: 4, Eviction: EvictRefuse})
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			proxyGet(t, px2, fmt.Sprintf("/burst?key=%d", i))
		}(i)
	}
	close(start)
	wg.Wait()
	if got := px2.Len(); got > 4 {
		t.Errorf("concurrent admissions overshot the cap: %d objects cached, cap 4", got)
	}
}

// TestMaxBytesRefusePolicy pins the byte budget under EvictRefuse: an
// admission that would push the ledger past MaxBytes is served uncached.
func TestMaxBytesRefusePolicy(t *testing.T) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 2048))
	})
	px, _ := newHandlerProxy(t, handler, Config{
		Eviction: EvictRefuse,
		MaxBytes: 3 * (2048 + 600), // room for ~3 objects
	})
	for i := 0; i < 6; i++ {
		proxyGet(t, px, fmt.Sprintf("/blob/%d", i))
	}
	if got := px.Len(); got != 3 {
		t.Errorf("resident objects = %d, want 3 under the byte budget", got)
	}
	if rb, max := px.ResidentBytes(), int64(3*(2048+600)); rb > max {
		t.Errorf("resident bytes %d exceed the budget %d", rb, max)
	}
}

// TestTriggeredFailurePullsRegularPollForward checks that when a
// triggered poll fails, the object's regular poll is pulled forward to
// the backoff retry instant instead of leaving the group's mutual
// guarantee unserved until the (possibly far-off) regular TTR — and
// that an already-sooner poll is never pushed later.
func TestTriggeredFailurePullsRegularPollForward(t *testing.T) {
	u, _ := url.Parse("http://127.0.0.1:0")
	px, err := New(Config{Origin: u, Bounds: core.TTRBounds{Min: 20 * time.Millisecond, Max: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	now := time.Now()
	e := &entry{key: "/member", policy: core.NewLIMD(core.LIMDConfig{
		Delta:  20 * time.Millisecond,
		Bounds: core.TTRBounds{Min: 20 * time.Millisecond, Max: time.Hour},
	})}

	// Regular poll an hour out; a failed triggered poll must pull it in.
	px.reschedule(e, now.Add(time.Hour))
	px.deferRetry(e, now, pollTriggered)
	if got := px.scheduledNextAt(e); got.After(now.Add(time.Minute)) {
		t.Errorf("failed triggered poll left retry at %v out", got.Sub(now))
	}

	// Regular poll imminent; a failed triggered poll must not delay it.
	px.reschedule(e, now.Add(time.Millisecond))
	px.deferRetry(e, now, pollTriggered)
	if got := px.scheduledNextAt(e); got.After(now.Add(2 * time.Millisecond)) {
		t.Errorf("failed triggered poll pushed an imminent poll out to %v", got.Sub(now))
	}
}

// TestShardConfigNormalization checks the shard count rounds up to a
// power of two and odd worker counts are accepted.
func TestShardConfigNormalization(t *testing.T) {
	u, _ := url.Parse("http://127.0.0.1:0")
	px, err := New(Config{Origin: u, Shards: 5, PollWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	if got := len(px.store.shards); got != 8 {
		t.Errorf("shards = %d, want 8", got)
	}
	if got := len(px.workers); got != 3 {
		t.Errorf("workers = %d, want 3", got)
	}

	// An absurd shard count must clamp, not hang New in nextPow2.
	px2, err := New(Config{Origin: u, Shards: (1 << 62) + 1})
	if err != nil {
		t.Fatal(err)
	}
	defer px2.Close()
	if got := len(px2.store.shards); got != maxShards {
		t.Errorf("clamped shards = %d, want %d", got, maxShards)
	}
}
