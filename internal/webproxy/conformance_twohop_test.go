package webproxy

import (
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"broadway/internal/metrics"
	"broadway/internal/simtime"
	"broadway/internal/trace"
	"broadway/internal/tracegen"
	"broadway/internal/webserver"
)

// This file extends the simtime conformance battery over the proxy
// hierarchy: the same stepped-virtual-clock replay discipline as
// conformance_test.go, but with TWO proxies chained — the parent
// subscribes to the origin and relays, the leaf subscribes to (and
// fetches through) the parent. Quiescence must now hold across the
// whole chain before the clock advances: both proxies drained, and
// both event hops fully processed (each LastSeq caught up to its
// upstream's head). Because the per-hop invariant "LastSeq advances
// only after the matching poll is enqueued" composes, two consecutive
// clean passes over the chain prove nothing is still in flight.

// twoHopResult carries the measured side of one two-hop replay.
type twoHopResult struct {
	leafLogs    map[string][]metrics.Refresh
	originPolls uint64
	parentPush  PushStats
	leafPush    PushStats
	relay       RelayStats
	// leafApplied counts leaf observations that installed a pushed
	// payload; leafPushedPolls counts the leaf's pushed confirmation
	// polls against the parent (zero on a clean value-carrying run).
	leafApplied     uint64
	leafPushedPolls uint64
}

// replayTraceTwoHop drives objs through origin → parent (relay) → leaf
// on the stepped clock. killUpstreamAt, when positive, disables the
// origin's event endpoint at that trace offset and revives it two
// virtual minutes later — exercising the mid-stream Reset path through
// the relay while the replay keeps running. values enables end-to-end
// payload delivery on every hop (origin publishes bodies, both proxies
// install them directly); payloadCap, when positive, bounds every hop's
// negotiated payload size, forcing bodies beyond it onto the chunk rung
// (0 keeps the protocol default).
func replayTraceTwoHop(t *testing.T, objs []replayObject, horizon time.Duration, pushStretch float64, killUpstreamAt time.Duration, values bool, payloadCap int) twoHopResult {
	t.Helper()
	clk := newSimClock()

	originOpts := []webserver.Option{
		webserver.WithClock(clk.Now),
		webserver.WithHistoryExtension(true),
		webserver.WithPushEvents(""),
	}
	if values {
		originOpts = append(originOpts, webserver.WithPushValues(payloadCap))
	}
	origin := webserver.NewOrigin(originOpts...)
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	originURL, err := url.Parse(originSrv.URL)
	if err != nil {
		t.Fatal(err)
	}

	parentCfg := Config{
		Origin:               originURL,
		Clock:                clk.Now,
		PollWorkers:          1,
		DefaultDelta:         confDelta,
		Bounds:               confBounds,
		PushStretch:          pushStretch,
		PushValues:           values,
		PushHeartbeatTimeout: -1, // the watchdog is wall-clocked; disable it
		PushBackoffMin:       time.Millisecond,
		PushBackoffMax:       10 * time.Millisecond,
		RelayEvents:          true,
		PushPayloadCap:       payloadCap,
	}
	pushURL, _ := url.Parse(originSrv.URL + "/events")
	parentCfg.PushURL = pushURL
	parent, err := New(parentCfg)
	if err != nil {
		t.Fatal(err)
	}
	parent.Start()
	defer parent.Close()
	parentSrv := httptest.NewServer(parent)
	defer parentSrv.Close()
	parentURL, err := url.Parse(parentSrv.URL)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	logs := make(map[string][]metrics.Refresh)
	var leafApplied, leafPushedPolls uint64
	leafCfg := Config{
		Origin:               parentURL,
		Clock:                clk.Now,
		PollWorkers:          1,
		DefaultDelta:         confDelta,
		Bounds:               confBounds,
		PushStretch:          pushStretch,
		PushValues:           values,
		PushHeartbeatTimeout: -1,
		PushBackoffMin:       time.Millisecond,
		PushBackoffMax:       10 * time.Millisecond,
		PushPayloadCap:       payloadCap,
		PollObserver: func(o PollObservation) {
			mu.Lock()
			logs[o.Key] = append(logs[o.Key], metrics.Refresh{
				At:        simtime.At(o.At.Sub(clk.base)),
				Modified:  o.Modified,
				Value:     o.Value,
				Triggered: o.Triggered || o.Pushed,
			})
			if o.Applied {
				leafApplied++
			} else if o.Pushed {
				leafPushedPolls++
			}
			mu.Unlock()
		},
	}
	leafPushURL, _ := url.Parse(parentSrv.URL + "/events")
	leafCfg.PushURL = leafPushURL
	leaf, err := New(leafCfg)
	if err != nil {
		t.Fatal(err)
	}
	leaf.Start()
	defer leaf.Close()
	leafSrv := httptest.NewServer(leaf)
	defer leafSrv.Close()

	if !waitFor(t, 5*time.Second, func() bool {
		return parent.PushStats().Connected && leaf.PushStats().Connected
	}) {
		t.Fatal("chain never connected")
	}

	// Seed version 0 of every object at the epoch.
	for _, o := range objs {
		origin.Set(o.path, replayBody(o, 0), "")
		if !o.tol.IsZero() {
			origin.SetTolerances(o.path, o.tol)
		}
	}

	// Chain quiescence: both hops' sequence spaces drained, both
	// proxies idle, and the condition stable across two fresh passes
	// (see the file comment).
	quiesce := func() {
		deadline := time.Now().Add(15 * time.Second)
		stable := 0
		for {
			pass := func() bool {
				if parent.PushStats().Connected && parent.PushStats().LastSeq < origin.PushSeq() {
					return false
				}
				if leaf.PushStats().LastSeq < parent.RelayStats().Hub.Seq {
					return false
				}
				if parent.InFlightPolls() != 0 || leaf.InFlightPolls() != 0 {
					return false
				}
				now := clk.Now()
				if next, ok := parent.NextRefreshAt(); ok && !next.After(now) {
					return false
				}
				if next, ok := leaf.NextRefreshAt(); ok && !next.After(now) {
					return false
				}
				return true
			}
			if pass() {
				stable++
				if stable >= 2 {
					return
				}
			} else {
				stable = 0
			}
			if time.Now().After(deadline) {
				t.Fatalf("two-hop replay never quiesced: parent inflight=%d leaf inflight=%d "+
					"originSeq=%d parentSeq=%d relaySeq=%d leafSeq=%d now=%v",
					parent.InFlightPolls(), leaf.InFlightPolls(),
					origin.PushSeq(), parent.PushStats().LastSeq,
					parent.RelayStats().Hub.Seq, leaf.PushStats().LastSeq, clk.Now())
			}
			parent.Kick()
			leaf.Kick()
			time.Sleep(100 * time.Microsecond)
		}
	}
	quiesce()

	// Admit every object at the leaf (which admits it at the parent),
	// off the whole-second grid.
	clk.AdvanceTo(clk.base.Add(admissionPhase))
	parent.Kick()
	leaf.Kick()
	for _, o := range objs {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", o.path, nil)
		leaf.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("admission of %s: %d %s", o.path, rec.Code, rec.Body.String())
		}
	}
	quiesce()

	// Merge the per-object update streams into one replay schedule,
	// interleaving the upstream kill/revive chaos instants when asked.
	type replayEvent struct {
		at   time.Duration
		obj  int // -1: chaos action
		rev  int
		kill bool
	}
	var events []replayEvent
	for i, o := range objs {
		for r, u := range o.tr.Updates {
			events = append(events, replayEvent{at: u.At, obj: i, rev: r + 1})
		}
	}
	if killUpstreamAt > 0 {
		// Offset off the whole-second grid so chaos instants never
		// collide with trace updates.
		events = append(events,
			replayEvent{at: killUpstreamAt + 511*time.Millisecond, obj: -1, kill: true},
			replayEvent{at: killUpstreamAt + 2*time.Minute + 511*time.Millisecond, obj: -1, kill: false},
		)
	}
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && (events[j].at < events[j-1].at ||
			(events[j].at == events[j-1].at && events[j].obj < events[j-1].obj)); j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}

	end := clk.base.Add(horizon)
	ei := 0
	for {
		var stepAt time.Time
		haveStep := false
		if ei < len(events) {
			stepAt = clk.base.Add(events[ei].at)
			haveStep = true
		}
		for _, px := range []*Proxy{parent, leaf} {
			if next, ok := px.NextRefreshAt(); ok && !next.After(end) {
				if !haveStep || next.Before(stepAt) {
					stepAt = next
					haveStep = true
				}
			}
		}
		if !haveStep || stepAt.After(end) {
			break
		}
		clk.AdvanceTo(stepAt)
		for ei < len(events) && !clk.base.Add(events[ei].at).After(stepAt) {
			ev := events[ei]
			ei++
			if ev.obj < 0 {
				if ev.kill {
					origin.SetPushAvailable(false)
					// The parent must notice before the replay moves on:
					// the subscriber's stream death is a wall-time
					// event, not a virtual one.
					if !waitFor(t, 5*time.Second, func() bool { return !parent.PushStats().Connected }) {
						t.Fatal("parent never noticed the upstream kill")
					}
				} else {
					origin.SetPushAvailable(true)
					if !waitFor(t, 5*time.Second, func() bool { return parent.PushStats().Connected }) {
						t.Fatal("parent never re-armed after the revive")
					}
				}
				continue
			}
			o := objs[ev.obj]
			origin.Set(o.path, replayBody(o, ev.rev), "")
		}
		parent.Kick()
		leaf.Kick()
		quiesce()
	}
	clk.AdvanceTo(end)
	parent.Kick()
	leaf.Kick()
	quiesce()

	mu.Lock()
	defer mu.Unlock()
	return twoHopResult{
		leafLogs:        logs,
		originPolls:     origin.Polls(),
		parentPush:      parent.PushStats(),
		leafPush:        leaf.PushStats(),
		relay:           parent.RelayStats(),
		leafApplied:     leafApplied,
		leafPushedPolls: leafPushedPolls,
	}
}

// TestConformanceTwoHopRelayHoldsLeafDeltaBound is the hierarchy
// acceptance criterion of ISSUE 4: an origin update must reach a leaf
// proxy through a relaying parent with zero Δt violations on the
// replayed trace — the relay may add a hop, never staleness beyond Δ.
func TestConformanceTwoHopRelayHoldsLeafDeltaBound(t *testing.T) {
	tr := confTrace(t)
	res := replayTraceTwoHop(t, []replayObject{{path: "/news", tr: tr}}, confHorizon, 16, 0, false, 0)

	log := res.leafLogs["/news"]
	if len(log) < 3 {
		t.Fatalf("leaf recorded only %d polls", len(log))
	}
	meas := metrics.EvaluateTemporal(tr, log, confDelta, confHorizon)
	t.Logf("leaf measured: %v (origin polls %d, relay %+v)", meas, res.originPolls, res.relay.Hub)
	if meas.Violations != 0 {
		t.Errorf("leaf Δt violations through the relay: %d", meas.Violations)
	}
	if res.leafPush.Polls == 0 {
		t.Error("leaf never ran a pushed poll; the relay was inert")
	}
	if res.relay.Hub.Seq == 0 {
		t.Error("parent relayed nothing")
	}
	// The pass-through + confirmation design means every origin update
	// produces at least one relay event; the leaf must have consumed
	// the stream to its head.
	if res.leafPush.LastSeq != res.relay.Hub.Seq {
		t.Errorf("leaf stopped at relay seq %d of %d", res.leafPush.LastSeq, res.relay.Hub.Seq)
	}
}

// TestConformanceTwoHopSurvivesUpstreamKill replays the same trace with
// the parent's upstream stream killed mid-burst and revived two virtual
// minutes later. The mid-stream Reset must reach the leaf over its
// still-open stream (the bugfix path: a pre-fix subscriber swallowed
// it), and the leaf's Δt bound must hold across the outage — the
// parent's paper-mode polling plus the confirmation relay cover the
// blind window.
func TestConformanceTwoHopSurvivesUpstreamKill(t *testing.T) {
	tr := confTrace(t)
	// Kill just after the first third of the horizon: the trace is
	// guaranteed to still have updates in flight afterwards.
	res := replayTraceTwoHop(t, []replayObject{{path: "/news", tr: tr}}, confHorizon, 16, confHorizon/3, false, 0)

	log := res.leafLogs["/news"]
	meas := metrics.EvaluateTemporal(tr, log, confDelta, confHorizon)
	t.Logf("leaf measured: %v (parent push %+v, leaf push %+v)", meas, res.parentPush, res.leafPush)
	if res.parentPush.Fallbacks == 0 {
		t.Fatal("the kill never produced a parent fallback; the chaos exercised nothing")
	}
	if res.leafPush.Resets == 0 {
		t.Fatal("the parent's upstream loss never propagated a mid-stream Reset to the leaf")
	}
	// The Reset must ride the leaf's live stream: its own channel to the
	// parent never died, so no leaf fallback and no reconnect.
	if res.leafPush.Fallbacks != 0 || res.leafPush.Connects != 1 {
		t.Errorf("leaf stream flapped (connects=%d fallbacks=%d); the Reset should ride the live stream",
			res.leafPush.Connects, res.leafPush.Fallbacks)
	}
	// Across the blind window the chain degrades to the paper's pure
	// polling (parent sweeps, paper-mode polls, confirmation relay), so
	// the leaf's violation rate must stay within the simulator's
	// pure-pull prediction — the outage may cost push's zero-violation
	// luxury, never more than pull-mode staleness.
	pred, _ := predictTemporal(t, tr, confDelta, confBounds)
	rMeas := violationRate(meas.Violations, meas.Polls)
	rPred := violationRate(pred.Violations, pred.Polls)
	if rMeas > rPred+0.08 {
		t.Errorf("leaf violation rate %.4f exceeds pure-pull prediction %.4f across the outage",
			rMeas, rPred)
	}
}

// TestConformanceTemporalSecondPreset widens the battery beyond CNN/FN:
// the NYT/AP preset (slower churn, Table 2's second row) replayed pull
// vs push through the single-hop live stack, with the same
// simulator-divergence tolerances as the primary preset.
func TestConformanceTemporalSecondPreset(t *testing.T) {
	tr := clipRound(tracegen.NYTAP(), confHorizon)
	if tr.NumUpdates() < 5 {
		t.Fatalf("clipped NYT/AP trace has only %d updates", tr.NumUpdates())
	}
	pred, _ := predictTemporal(t, tr, confDelta, confBounds)

	pull := replayTrace(t, []replayObject{{path: "/nytap", tr: tr}}, confHorizon, Config{
		DefaultDelta: confDelta,
		Bounds:       confBounds,
	}, false)
	measPull := metrics.EvaluateTemporal(tr, pull.logs["/nytap"], confDelta, confHorizon)
	t.Logf("predicted: %v", pred)
	t.Logf("pull measured: %v (origin polls %d)", measPull, pull.originPolls)

	const tol = 0.08
	if d := measPull.FidelityByViolations - pred.FidelityByViolations; d < -tol || d > tol {
		t.Errorf("per-poll fidelity diverged: measured %.3f predicted %.3f",
			measPull.FidelityByViolations, pred.FidelityByViolations)
	}
	if lo, hi := pred.Polls/2, pred.Polls*2; measPull.Polls < lo || measPull.Polls > hi {
		t.Errorf("poll volume diverged: measured %d predicted %d", measPull.Polls, pred.Polls)
	}

	push := replayTrace(t, []replayObject{{path: "/nytap", tr: tr}}, confHorizon, Config{
		DefaultDelta: confDelta,
		Bounds:       confBounds,
		PushStretch:  16,
	}, true)
	measPush := metrics.EvaluateTemporal(tr, push.logs["/nytap"], confDelta, confHorizon)
	t.Logf("push measured: %v (origin polls %d)", measPush, push.originPolls)
	rPull := violationRate(measPull.Violations, measPull.Polls)
	rPush := violationRate(measPush.Violations, measPush.Polls)
	if rPush > rPull+1e-9 {
		t.Errorf("push raised the Δt violation rate: pull=%.4f push=%.4f", rPull, rPush)
	}
	if push.originPolls >= pull.originPolls {
		t.Errorf("push saved no origin polls: pull=%d push=%d", pull.originPolls, push.originPolls)
	}
}

// Interface check: the replay driver assumes trace updates are strictly
// increasing after clipRound; guard the assumption explicitly so a
// future preset change fails here, not as a mysterious replay stall.
func TestClipRoundKeepsUpdatesStrictlyIncreasing(t *testing.T) {
	for _, tr := range []*trace.Trace{tracegen.CNNFN(), tracegen.NYTAP(), tracegen.NYTReuters()} {
		clipped := clipRound(tr, confHorizon)
		prev := time.Duration(-1)
		for _, u := range clipped.Updates {
			if u.At <= prev {
				t.Fatalf("%s: update at %v not after %v", tr.Name, u.At, prev)
			}
			prev = u.At
		}
	}
}
