package webproxy

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"broadway/internal/core"
	"broadway/internal/httpx"
	"broadway/internal/webserver"
)

// liveSetup wires a real origin (httptest) behind a proxy with
// millisecond-scale TTRs so live tests complete quickly.
type liveSetup struct {
	origin    *webserver.Origin
	originSrv *httptest.Server
	proxy     *Proxy
	proxySrv  *httptest.Server
}

func newLiveSetup(t *testing.T, originOpts []webserver.Option, cfg Config) *liveSetup {
	t.Helper()
	origin := webserver.NewOrigin(originOpts...)
	originSrv := httptest.NewServer(origin)
	t.Cleanup(originSrv.Close)

	u, err := url.Parse(originSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Origin = u
	if cfg.Bounds == (core.TTRBounds{}) {
		cfg.Bounds = core.TTRBounds{Min: 20 * time.Millisecond, Max: 500 * time.Millisecond}
	}
	if cfg.DefaultDelta == 0 {
		cfg.DefaultDelta = 20 * time.Millisecond
	}
	px, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	px.Start()
	t.Cleanup(px.Close)
	proxySrv := httptest.NewServer(px)
	t.Cleanup(proxySrv.Close)

	return &liveSetup{origin: origin, originSrv: originSrv, proxy: px, proxySrv: proxySrv}
}

func (s *liveSetup) get(t *testing.T, path string) (string, http.Header) {
	t.Helper()
	resp, err := http.Get(s.proxySrv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s (%s)", path, resp.Status, body)
	}
	return string(body), resp.Header
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

func TestMissThenHit(t *testing.T) {
	s := newLiveSetup(t, nil, Config{})
	s.origin.Set("/page", []byte("hello"), "text/plain")

	body, hdr := s.get(t, "/page")
	if body != "hello" {
		t.Errorf("body = %q", body)
	}
	if hdr.Get("X-Cache") != "MISS" {
		t.Errorf("first request X-Cache = %q", hdr.Get("X-Cache"))
	}
	body, hdr = s.get(t, "/page")
	if body != "hello" || hdr.Get("X-Cache") != "HIT" {
		t.Errorf("second request: body=%q X-Cache=%q", body, hdr.Get("X-Cache"))
	}
	stats := s.proxy.ObjectStats("/page")
	if !stats.Cached || stats.Hits != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestBackgroundRefreshPicksUpUpdates(t *testing.T) {
	s := newLiveSetup(t, nil, Config{})
	s.origin.Set("/page", []byte("v1"), "")
	s.get(t, "/page")

	s.origin.Set("/page", []byte("v2"), "")
	ok := waitFor(t, 2*time.Second, func() bool {
		body, _ := s.proxy.CachedBody("/page")
		return string(body) == "v2"
	})
	if !ok {
		t.Fatal("cached copy never refreshed to v2")
	}
	// The refresh happened in the background — clients always hit.
	body, hdr := s.get(t, "/page")
	if body != "v2" || hdr.Get("X-Cache") != "HIT" {
		t.Errorf("body=%q X-Cache=%q", body, hdr.Get("X-Cache"))
	}
}

func TestQuietObjectPollsBackOff(t *testing.T) {
	s := newLiveSetup(t, nil, Config{
		Bounds: core.TTRBounds{Min: 10 * time.Millisecond, Max: 100 * time.Millisecond},
	})
	s.origin.Set("/static", []byte("unchanging"), "")
	s.get(t, "/static")

	time.Sleep(600 * time.Millisecond)
	polls := s.proxy.ObjectStats("/static").Polls
	// Poll-every-TTRmin would be ~60 polls; LIMD should back off toward
	// TTRmax (100ms → ~6 polls steady-state, plus the warm-up ramp).
	if polls > 40 {
		t.Errorf("polls = %d; LIMD did not back off on a static object", polls)
	}
	if polls < 3 {
		t.Errorf("polls = %d; the refresher does not seem to run", polls)
	}
}

func TestGroupTriggering(t *testing.T) {
	s := newLiveSetup(t, nil, Config{
		Mode: core.TriggerAll,
		// Long Δ so regular schedules back off; the group trigger is
		// then the only way the sibling refreshes quickly.
		DefaultDelta:      50 * time.Millisecond,
		DefaultGroupDelta: 5 * time.Millisecond,
		Bounds:            core.TTRBounds{Min: 50 * time.Millisecond, Max: 300 * time.Millisecond},
	})
	s.origin.Set("/story", []byte("story v1"), "text/html")
	s.origin.Set("/photo", []byte("photo v1"), "image/png")
	for _, path := range []string{"/story", "/photo"} {
		s.origin.SetTolerances(path, httpx.Tolerances{Group: "news"})
	}
	// Staggered admission desynchronizes the two refresh schedules; an
	// in-phase pair never needs (and never gets) triggered polls.
	s.get(t, "/story")
	time.Sleep(120 * time.Millisecond)
	s.get(t, "/photo")

	// Let both schedules back off, then keep the story hot: every
	// detected story update is a trigger opportunity for the photo.
	// (When the two schedules happen to be in phase a trigger is
	// correctly suppressed, so a single update is not guaranteed to
	// trigger — a stream of updates is.)
	time.Sleep(300 * time.Millisecond)
	rev := 0
	ok := waitFor(t, 5*time.Second, func() bool {
		rev++
		s.origin.Set("/story", []byte(fmt.Sprintf("story v%d", rev)), "text/html")
		return s.proxy.ObjectStats("/photo").Triggered > 0
	})
	if !ok {
		t.Fatalf("no triggered poll of the photo within the deadline (story polls=%d photo polls=%d)",
			s.proxy.ObjectStats("/story").Polls, s.proxy.ObjectStats("/photo").Polls)
	}
}

func TestOriginDeltaDirectiveHonored(t *testing.T) {
	s := newLiveSetup(t, nil, Config{
		DefaultDelta: time.Hour, // would essentially never poll
		Bounds:       core.TTRBounds{Min: 10 * time.Millisecond, Max: time.Hour},
	})
	s.origin.Set("/fast", []byte("v1"), "")
	// The origin advertises a 0-second... cache-control carries integer
	// seconds, so use 1s: far below the proxy default.
	s.origin.SetTolerances("/fast", httpx.Tolerances{Delta: time.Second})
	s.get(t, "/fast")

	ok := waitFor(t, 3*time.Second, func() bool {
		return s.proxy.ObjectStats("/fast").Polls >= 2
	})
	if !ok {
		t.Fatal("proxy ignored the origin's x-cc-delta directive")
	}
}

func TestUpstreamFailureRecovery(t *testing.T) {
	s := newLiveSetup(t, nil, Config{})
	s.origin.Set("/page", []byte("v1"), "")
	s.get(t, "/page")

	// Swap the origin URL to a dead endpoint by closing the server,
	// then verify the proxy keeps serving the stale copy.
	s.originSrv.Close()
	body, hdr := s.get(t, "/page")
	if body != "v1" || hdr.Get("X-Cache") != "HIT" {
		t.Errorf("stale serving failed: body=%q X-Cache=%q", body, hdr.Get("X-Cache"))
	}
}

func TestMissOnDeadOriginReturnsBadGateway(t *testing.T) {
	s := newLiveSetup(t, nil, Config{})
	s.originSrv.Close()
	resp, err := http.Get(s.proxySrv.URL + "/never-seen")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newLiveSetup(t, nil, Config{})
	resp, err := http.Post(s.proxySrv.URL+"/x", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing origin must fail")
	}
}

func TestCloseIdempotentAndStops(t *testing.T) {
	s := newLiveSetup(t, nil, Config{})
	s.origin.Set("/page", []byte("v1"), "")
	s.get(t, "/page")
	s.proxy.Close()
	s.proxy.Close() // second close must not panic
	polls := s.proxy.ObjectStats("/page").Polls
	time.Sleep(150 * time.Millisecond)
	if got := s.proxy.ObjectStats("/page").Polls; got != polls {
		t.Errorf("polls continued after Close: %d → %d", polls, got)
	}
}

func TestStatsUnknownObject(t *testing.T) {
	s := newLiveSetup(t, nil, Config{})
	if st := s.proxy.ObjectStats("/nope"); st.Cached {
		t.Error("unknown object reported cached")
	}
	if _, ok := s.proxy.CachedBody("/nope"); ok {
		t.Error("unknown object returned a body")
	}
}

func TestHistoryExtensionConsumed(t *testing.T) {
	s := newLiveSetup(t, []webserver.Option{webserver.WithHistoryExtension(true)}, Config{})
	s.origin.Set("/page", []byte("v1"), "")
	s.get(t, "/page")
	s.origin.Set("/page", []byte("v2"), "")
	ok := waitFor(t, 2*time.Second, func() bool {
		body, _ := s.proxy.CachedBody("/page")
		return string(body) == "v2"
	})
	if !ok {
		t.Fatal("refresh with history extension failed")
	}
}

func TestValueDomainQuoteTracking(t *testing.T) {
	s := newLiveSetup(t, nil, Config{
		Bounds: core.TTRBounds{Min: 20 * time.Millisecond, Max: 200 * time.Millisecond},
	})
	// A quote endpoint: numeric body, Δv advertised via x-cc-vdelta.
	s.origin.Set("/quote/acme", []byte("100.00"), "text/plain")
	s.origin.SetTolerances("/quote/acme", httpx.Tolerances{ValueDelta: 0.25})

	body, _ := s.get(t, "/quote/acme")
	if body != "100.00" {
		t.Fatalf("body = %q", body)
	}

	// Drive the quote upward; the AdaptiveTTR refresher must track it.
	for i := 1; i <= 10; i++ {
		s.origin.Set("/quote/acme", []byte(fmt.Sprintf("%.2f", 100.0+float64(i)/10)), "text/plain")
		time.Sleep(30 * time.Millisecond)
	}
	ok := waitFor(t, 3*time.Second, func() bool {
		b, _ := s.proxy.CachedBody("/quote/acme")
		return string(b) == "101.00"
	})
	if !ok {
		b, _ := s.proxy.CachedBody("/quote/acme")
		t.Fatalf("quote never tracked to 101.00 (cached %q)", b)
	}
	if s.proxy.ObjectStats("/quote/acme").Polls < 3 {
		t.Error("value-domain refresher barely polled")
	}
}

func TestNonNumericBodyFallsBackToLIMD(t *testing.T) {
	s := newLiveSetup(t, nil, Config{})
	// Δv advertised but the body is not numeric: the proxy must fall
	// back to temporal consistency rather than fail.
	s.origin.Set("/page", []byte("<html>not a number</html>"), "text/html")
	s.origin.SetTolerances("/page", httpx.Tolerances{ValueDelta: 0.5})
	body, _ := s.get(t, "/page")
	if body != "<html>not a number</html>" {
		t.Fatalf("body = %q", body)
	}
	// Refreshing still works.
	s.origin.Set("/page", []byte("<html>v2</html>"), "text/html")
	ok := waitFor(t, 2*time.Second, func() bool {
		b, _ := s.proxy.CachedBody("/page")
		return string(b) == "<html>v2</html>"
	})
	if !ok {
		t.Fatal("LIMD fallback did not refresh")
	}
}

func TestLiveMutualValuePairing(t *testing.T) {
	s := newLiveSetup(t, nil, Config{
		Bounds: core.TTRBounds{Min: 20 * time.Millisecond, Max: 200 * time.Millisecond},
	})
	// Two quotes in one group with a Δv tolerance: the proxy must pair
	// them under the partitioned M_v controller.
	s.origin.Set("/quote/fast", []byte("100.00"), "text/plain")
	s.origin.Set("/quote/slow", []byte("50.00"), "text/plain")
	for _, p := range []string{"/quote/fast", "/quote/slow"} {
		s.origin.SetTolerances(p, httpx.Tolerances{ValueDelta: 0.5, Group: "quotes"})
	}
	s.get(t, "/quote/fast")
	s.get(t, "/quote/slow")

	// Drive the fast quote hard, leave the slow one still.
	for i := 1; i <= 12; i++ {
		s.origin.Set("/quote/fast", []byte(fmt.Sprintf("%.2f", 100.0+float64(i)*0.3)), "text/plain")
		time.Sleep(25 * time.Millisecond)
	}
	ok := waitFor(t, 3*time.Second, func() bool {
		b, _ := s.proxy.CachedBody("/quote/fast")
		return string(b) == "103.60"
	})
	if !ok {
		b, _ := s.proxy.CachedBody("/quote/fast")
		t.Fatalf("fast quote never tracked (cached %q)", b)
	}
	// The partitioned split gives the fast mover the tighter share and
	// therefore (far) more polls.
	fast := s.proxy.ObjectStats("/quote/fast").Polls
	slow := s.proxy.ObjectStats("/quote/slow").Polls
	if fast <= slow {
		t.Errorf("partitioned split not biased: fast=%d slow=%d", fast, slow)
	}
	// No temporal trigger storms for the paired quotes.
	if trig := s.proxy.ObjectStats("/quote/slow").Triggered; trig > 2 {
		t.Errorf("paired value entries should not be trigger targets: %d", trig)
	}
}
