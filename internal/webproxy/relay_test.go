package webproxy

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"broadway/internal/core"
	"broadway/internal/httpx"
	"broadway/internal/push"
	"broadway/internal/webserver"
)

// This file tests the proxy hierarchy of ISSUE 4: a parent proxy
// relaying invalidation events downstream (origin → parent → leaf), the
// conditional-GET face that lets a leaf revalidate against a parent,
// and the kill-the-middle chaos path where losing the parent's upstream
// propagates a mid-stream Reset to the leaves.

// chainSetup is an origin → parent → leaf hierarchy wired over
// loopback HTTP: the leaf's origin AND event stream are the parent.
type chainSetup struct {
	origin    *webserver.Origin
	originSrv *httptest.Server
	parent    *Proxy
	parentSrv *httptest.Server
	leaf      *Proxy
	leafSrv   *httptest.Server
}

func newChainSetup(t *testing.T, parentCfg, leafCfg Config) *chainSetup {
	t.Helper()
	origin := webserver.NewOrigin(
		webserver.WithHistoryExtension(true),
		webserver.WithPushHeartbeat(25*time.Millisecond),
	)
	originSrv := httptest.NewServer(origin)
	t.Cleanup(originSrv.Close)

	fastDefaults := func(cfg *Config) {
		if cfg.PushBackoffMin == 0 {
			cfg.PushBackoffMin = 5 * time.Millisecond
		}
		if cfg.PushBackoffMax == 0 {
			cfg.PushBackoffMax = 50 * time.Millisecond
		}
		if cfg.PushHeartbeatTimeout == 0 {
			cfg.PushHeartbeatTimeout = 200 * time.Millisecond
		}
		if cfg.Bounds == (core.TTRBounds{}) {
			cfg.Bounds = core.TTRBounds{Min: 50 * time.Millisecond, Max: 400 * time.Millisecond}
		}
		if cfg.DefaultDelta == 0 {
			cfg.DefaultDelta = 50 * time.Millisecond
		}
	}

	originURL, err := url.Parse(originSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	parentCfg.Origin = originURL
	pushURL, _ := url.Parse(originSrv.URL + "/events")
	parentCfg.PushURL = pushURL
	parentCfg.RelayEvents = true
	parentCfg.RelayHeartbeat = 25 * time.Millisecond
	fastDefaults(&parentCfg)
	parent, err := New(parentCfg)
	if err != nil {
		t.Fatal(err)
	}
	parent.Start()
	t.Cleanup(parent.Close)
	parentSrv := httptest.NewServer(parent)
	t.Cleanup(parentSrv.Close)

	parentURL, err := url.Parse(parentSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	leafCfg.Origin = parentURL
	leafPushURL, _ := url.Parse(parentSrv.URL + "/events")
	leafCfg.PushURL = leafPushURL
	fastDefaults(&leafCfg)
	leaf, err := New(leafCfg)
	if err != nil {
		t.Fatal(err)
	}
	leaf.Start()
	t.Cleanup(leaf.Close)
	leafSrv := httptest.NewServer(leaf)
	t.Cleanup(leafSrv.Close)

	s := &chainSetup{origin: origin, originSrv: originSrv,
		parent: parent, parentSrv: parentSrv, leaf: leaf, leafSrv: leafSrv}
	if !waitFor(t, 3*time.Second, func() bool {
		return parent.PushStats().Connected && leaf.PushStats().Connected
	}) {
		t.Fatal("chain never connected")
	}
	return s
}

func (s *chainSetup) getLeaf(t *testing.T, path string) string {
	t.Helper()
	resp, err := http.Get(s.leafSrv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s (%s)", path, resp.Status, buf[:n])
	}
	return string(buf[:n])
}

// TestProxyAnswersConditionalGet: the upstream face a child proxy needs
// — a revalidation with If-Modified-Since at the cached Last-Modified
// must cost no body, and the origin's tolerance directives must ride
// the response either way.
func TestProxyAnswersConditionalGet(t *testing.T) {
	s := newLiveSetup(t, []webserver.Option{webserver.WithHistoryExtension(true)}, Config{
		DefaultDelta: time.Minute,
		Bounds:       core.TTRBounds{Min: time.Minute, Max: time.Hour},
	})
	s.origin.Set("/page", []byte("v1"), "")
	_, hdr := s.get(t, "/page")
	lastMod := hdr.Get("Last-Modified")
	if lastMod == "" {
		t.Fatal("no Last-Modified on the cached response")
	}

	req, _ := http.NewRequest(http.MethodGet, s.proxySrv.URL+"/page", nil)
	req.Header.Set("If-Modified-Since", lastMod)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET = %d, want 304", resp.StatusCode)
	}
	if got := resp.Header.Get("Last-Modified"); got != lastMod {
		t.Errorf("304 Last-Modified = %q, want %q", got, lastMod)
	}

	// An out-of-date validator still gets the full body.
	req.Header.Set("If-Modified-Since", time.Now().Add(-24*time.Hour).UTC().Format(http.TimeFormat))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("stale-validator GET = %d, want 200", resp2.StatusCode)
	}
}

// TestProxyForwardsToleranceDirectives: the origin's Cache-Control
// extension directives (Δ, group, δ) must reach a child through the
// parent, or the child would run default tolerances and no groups.
func TestProxyForwardsToleranceDirectives(t *testing.T) {
	s := newLiveSetup(t, nil, Config{})
	s.origin.Set("/obj", []byte("v1"), "")
	s.origin.SetTolerances("/obj", httpx.Tolerances{
		Delta: 30 * time.Second, Group: "g", GroupDelta: 10 * time.Second,
	})
	_, hdr := s.get(t, "/obj")
	cc := hdr.Get("Cache-Control")
	if cc == "" {
		t.Fatal("no Cache-Control forwarded")
	}
	for _, want := range []string{"delta", "group"} {
		if !strings.Contains(cc, want) {
			t.Errorf("Cache-Control %q missing %s directive", cc, want)
		}
	}
}

// TestRelayPassThroughServesNonResidentKeys: an upstream event for an
// object the parent does not cache must still reach downstream
// subscribers — a leaf may well cache what its parent does not.
func TestRelayPassThroughServesNonResidentKeys(t *testing.T) {
	s := newChainSetup(t, Config{}, Config{})

	var mu sync.Mutex
	var got []push.Event
	sub, err := push.NewSubscriber(push.SubscriberConfig{
		URL: s.parentSrv.URL + "/events",
		OnEvent: func(ev push.Event) {
			mu.Lock()
			got = append(got, ev)
			mu.Unlock()
		},
		BackoffMin: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sub.Run(ctx)
	if !waitFor(t, 3*time.Second, func() bool { return s.parent.RelayStats().Hub.Subscribers >= 2 }) {
		t.Fatal("extra subscriber never registered") // the leaf holds the other slot
	}

	s.origin.Set("/nobody-cached-this", []byte("v1"), "")
	if !waitFor(t, 3*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, ev := range got {
			if ev.Key == "/nobody-cached-this" {
				return true
			}
		}
		return false
	}) {
		t.Fatalf("pass-through event never relayed (relay stats %+v)", s.parent.RelayStats())
	}
}

// TestTwoHopPushDeliversThroughParent: with TTR bounds so wide that
// polling could never observe the update inside the window, an origin
// update must reach the leaf's cache via origin hub → parent relay →
// leaf pushed poll.
func TestTwoHopPushDeliversThroughParent(t *testing.T) {
	wide := Config{
		DefaultDelta: time.Minute,
		Bounds:       core.TTRBounds{Min: time.Minute, Max: time.Hour},
	}
	s := newChainSetup(t, wide, wide)
	s.origin.Set("/page", []byte("v1"), "")
	if body := s.getLeaf(t, "/page"); body != "v1" {
		t.Fatalf("admitted body %q", body)
	}

	s.origin.Set("/page", []byte("v2"), "")
	if !waitFor(t, 4*time.Second, func() bool {
		b, _ := s.leaf.CachedBody("/page")
		return string(b) == "v2"
	}) {
		t.Fatalf("update never reached the leaf (parent push %+v, relay %+v, leaf push %+v)",
			s.parent.PushStats(), s.parent.RelayStats(), s.leaf.PushStats())
	}
	if st := s.leaf.ObjectStats("/page"); st.Pushed == 0 {
		t.Errorf("leaf freshness did not come from a pushed poll: %+v", st)
	}
	if rs := s.parent.RelayStats(); !rs.Enabled || rs.Hub.Seq == 0 {
		t.Errorf("relay hub never published: %+v", rs)
	}
}

// TestClosingRelayParentReleasesLeaves: a Close()d parent will never
// publish again, so its relay must not keep heartbeating children into
// believing their stretched schedules are still backed by a live
// channel — they must fall back to paper-mode polling.
func TestClosingRelayParentReleasesLeaves(t *testing.T) {
	cfg := Config{
		PushStretch: 10,
		Bounds:      core.TTRBounds{Min: 50 * time.Millisecond, Max: 300 * time.Millisecond},
	}
	s := newChainSetup(t, cfg, cfg)
	s.origin.Set("/page", []byte("v1"), "")
	if body := s.getLeaf(t, "/page"); body != "v1" {
		t.Fatalf("admitted body %q", body)
	}

	s.parent.Close()
	if !waitFor(t, 3*time.Second, func() bool {
		st := s.leaf.PushStats()
		return !st.Connected && (st.Fallbacks >= 1 || st.Resets >= 1)
	}) {
		t.Fatalf("leaf still believes the closed parent's channel is live: %+v", s.leaf.PushStats())
	}
}

// TestKillTheMiddleDrivesLeafSweepWithoutDisconnect is the chaos
// acceptance path of ISSUE 4: killing the parent's upstream stream
// mid-burst must propagate a mid-stream hello/Reset to the leaves —
// running their fallback reconciliation — while their connections to
// the parent stay up, and freshness must keep flowing on paper-mode
// bounds via the parent's own polling (confirmation relay).
func TestKillTheMiddleDrivesLeafSweepWithoutDisconnect(t *testing.T) {
	cfg := Config{
		PushStretch: 10,
		Bounds:      core.TTRBounds{Min: 50 * time.Millisecond, Max: 300 * time.Millisecond},
	}
	s := newChainSetup(t, cfg, cfg)
	s.origin.Set("/page", []byte("v1"), "")
	if body := s.getLeaf(t, "/page"); body != "v1" {
		t.Fatalf("admitted body %q", body)
	}
	leafConnects := s.leaf.PushStats().Connects

	// Mid-burst: updates flowing while the middle loses its upstream.
	s.origin.Set("/page", []byte("v2"), "")
	s.origin.SetPushAvailable(false)
	if !waitFor(t, 3*time.Second, func() bool { return s.parent.PushStats().Fallbacks >= 1 }) {
		t.Fatal("parent never noticed its upstream died")
	}
	if !waitFor(t, 3*time.Second, func() bool { return s.leaf.PushStats().Resets >= 1 }) {
		t.Fatalf("mid-stream Reset never reached the leaf (leaf push %+v)", s.leaf.PushStats())
	}
	if got := s.leaf.PushStats().Connects; got != leafConnects {
		t.Errorf("leaf reconnected (%d → %d connects); the Reset must ride the live stream",
			leafConnects, got)
	}
	if !s.leaf.PushStats().Connected {
		t.Error("leaf channel to the parent should still be healthy")
	}

	// The parent is blind upstream but polls paper-mode; its confirmed
	// updates must keep flowing to the leaf through the relay. One full
	// grown TTR plus slack bounds the staleness.
	s.origin.Set("/page", []byte("v3"), "")
	if !waitFor(t, 2*time.Second, func() bool {
		b, _ := s.leaf.CachedBody("/page")
		return string(b) == "v3"
	}) {
		t.Fatalf("update during the parent's blind window never reached the leaf (leaf %+v)",
			s.leaf.PushStats())
	}

	// Revive the origin's endpoint: the parent re-arms, and the relay
	// announces the resync hole to the leaf (gap unknown ⇒ children
	// must reconcile) — the leaf survives it connected.
	s.origin.SetPushAvailable(true)
	if !waitFor(t, 3*time.Second, func() bool { return s.parent.PushStats().Connected }) {
		t.Fatal("parent never re-armed")
	}
	s.origin.Set("/page", []byte("v4"), "")
	if !waitFor(t, 3*time.Second, func() bool {
		b, _ := s.leaf.CachedBody("/page")
		return string(b) == "v4"
	}) {
		t.Fatal("re-armed chain did not deliver")
	}
}
