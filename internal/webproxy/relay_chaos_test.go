package webproxy

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"broadway/internal/core"
	"broadway/internal/push"
	"broadway/internal/webserver"
)

// This file is the deeper-hierarchy chaos battery of ISSUE 5 (ROADMAP
// open item): a relaying parent under leaf-churn storms — subscribe/
// unsubscribe cycles racing live publishes — must account every
// subscription back down to zero with no handler goroutine left
// behind, and a relay whose replay ring is smaller than a disconnect
// burst must Reset each resuming leaf exactly once while the fallback
// sweep keeps the staleness bound.

// newRelayParent builds an origin → relaying-parent pair with fast
// chaos-friendly timings.
func newRelayParent(t *testing.T, parentCfg Config) (*webserver.Origin, *Proxy, *httptest.Server) {
	t.Helper()
	origin := webserver.NewOrigin(
		webserver.WithHistoryExtension(true),
		webserver.WithPushHeartbeat(25*time.Millisecond),
	)
	originSrv := httptest.NewServer(origin)
	t.Cleanup(originSrv.Close)

	originURL, _ := url.Parse(originSrv.URL)
	pushURL, _ := url.Parse(originSrv.URL + "/events")
	parentCfg.Origin = originURL
	parentCfg.PushURL = pushURL
	parentCfg.RelayEvents = true
	parentCfg.RelayHeartbeat = 25 * time.Millisecond
	if parentCfg.PushBackoffMin == 0 {
		parentCfg.PushBackoffMin = 5 * time.Millisecond
	}
	if parentCfg.PushBackoffMax == 0 {
		parentCfg.PushBackoffMax = 50 * time.Millisecond
	}
	if parentCfg.PushHeartbeatTimeout == 0 {
		parentCfg.PushHeartbeatTimeout = 200 * time.Millisecond
	}
	if parentCfg.Bounds == (core.TTRBounds{}) {
		parentCfg.Bounds = core.TTRBounds{Min: 50 * time.Millisecond, Max: 300 * time.Millisecond}
	}
	if parentCfg.DefaultDelta == 0 {
		parentCfg.DefaultDelta = 50 * time.Millisecond
	}
	parent, err := New(parentCfg)
	if err != nil {
		t.Fatal(err)
	}
	parent.Start()
	t.Cleanup(parent.Close)
	parentSrv := httptest.NewServer(parent)
	t.Cleanup(parentSrv.Close)
	if !waitFor(t, 3*time.Second, func() bool { return parent.PushStats().Connected }) {
		t.Fatal("parent never connected upstream")
	}
	return origin, parent, parentSrv
}

// TestRelayLeafChurnSoak storms a relaying parent with subscribe/
// unsubscribe cycles — well-behaved subscribers, clients that vanish
// mid-stream, and clients that never speak the protocol — while the
// origin churns updates through the relay. When the storm ends, the
// hub's subscriber accounting must return to zero, every handler
// goroutine must unwind, and the relay must still serve a fresh
// subscriber.
func TestRelayLeafChurnSoak(t *testing.T) {
	origin, parent, parentSrv := newRelayParent(t, Config{PushStretch: 10})
	origin.Set("/page", []byte("v0"), "")

	// Churn the origin throughout so the storm races live broadcasts
	// (subscription teardown while frames are in flight is the leak-
	// prone path).
	stopChurn := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		rev := 0
		for {
			select {
			case <-stopChurn:
				return
			case <-time.After(2 * time.Millisecond):
				rev++
				origin.Set("/page", []byte(fmt.Sprintf("v%d", rev)), "")
			}
		}
	}()

	baselineGoroutines := runtime.NumGoroutine()
	const (
		stormWorkers = 8
		stormCycles  = 25
	)
	var stormWG sync.WaitGroup
	for w := 0; w < stormWorkers; w++ {
		stormWG.Add(1)
		go func(w int) {
			defer stormWG.Done()
			for c := 0; c < stormCycles; c++ {
				switch c % 3 {
				case 0:
					// A well-behaved subscriber that lives briefly.
					sub, err := push.NewSubscriber(push.SubscriberConfig{
						URL:        parentSrv.URL + "/events",
						OnEvent:    func(push.Event) {},
						BackoffMin: time.Millisecond,
					})
					if err != nil {
						t.Error(err)
						return
					}
					ctx, cancel := context.WithCancel(context.Background())
					done := make(chan struct{})
					go func() { sub.Run(ctx); close(done) }()
					time.Sleep(time.Duration(1+w) * time.Millisecond)
					cancel()
					<-done
				case 1:
					// A client that connects and vanishes mid-stream.
					req, _ := http.NewRequest(http.MethodGet, parentSrv.URL+"/events", nil)
					resp, err := http.DefaultTransport.RoundTrip(req)
					if err == nil {
						time.Sleep(time.Millisecond)
						resp.Body.Close()
					}
				case 2:
					// A non-subscriber poking the endpoint wrongly.
					req, _ := http.NewRequest(http.MethodPost, parentSrv.URL+"/events", nil)
					if resp, err := http.DefaultClient.Do(req); err == nil {
						resp.Body.Close()
					}
				}
			}
		}(w)
	}
	stormWG.Wait()
	close(stopChurn)
	churnWG.Wait()

	// Accounting must return to zero: no registered subscriptions, no
	// handler goroutines still unwinding.
	if !waitFor(t, 5*time.Second, func() bool {
		st := parent.RelayStats().Hub
		return st.Subscribers == 0 && st.ActiveStreams == 0
	}) {
		t.Fatalf("hub accounting did not drain: %+v", parent.RelayStats().Hub)
	}
	// No goroutine leak: allow slack for the HTTP server's transient
	// conn handlers, but a per-cycle leak (200 cycles) must show.
	if !waitFor(t, 5*time.Second, func() bool {
		return runtime.NumGoroutine() <= baselineGoroutines+10
	}) {
		t.Errorf("goroutines %d after the storm, baseline %d; handlers leaked",
			runtime.NumGoroutine(), baselineGoroutines)
	}

	// The relay survived: a fresh subscriber connects and sees events.
	var got atomic.Int64
	sub, err := push.NewSubscriber(push.SubscriberConfig{
		URL:        parentSrv.URL + "/events",
		OnEvent:    func(push.Event) { got.Add(1) },
		BackoffMin: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sub.Run(ctx)
	// Register first: a fresh (since=0) subscription starts at the
	// stream head, so an event published before it lands is invisible.
	if !waitFor(t, 3*time.Second, func() bool { return parent.RelayStats().Hub.Subscribers == 1 }) {
		t.Fatalf("post-storm subscriber never registered: %+v", parent.RelayStats().Hub)
	}
	origin.Set("/page", []byte("after-storm"), "")
	if !waitFor(t, 3*time.Second, func() bool { return got.Load() >= 1 }) {
		t.Fatalf("relay dead after the storm: hub %+v push %+v", parent.RelayStats().Hub, parent.PushStats())
	}
}

// TestRelayReplayOverflowResetsEachLeafOnce: leaves disconnected across
// a burst larger than the relay's replay ring must be told to Reset on
// resume — exactly once each — and the fallback sweep must bound the
// staleness the blind window left behind.
func TestRelayReplayOverflowResetsEachLeafOnce(t *testing.T) {
	origin, parent, parentSrv := newRelayParent(t, Config{
		PushStretch: 10,
		RelayReplay: 8, // ring far smaller than the burst below
	})
	origin.Set("/page", []byte("v1"), "")

	// One full leaf proxy plus two bare subscribers, all resuming slowly
	// enough that the burst provably lands while they are disconnected.
	leafCfg := Config{
		PushStretch:          10,
		Bounds:               core.TTRBounds{Min: 50 * time.Millisecond, Max: 300 * time.Millisecond},
		DefaultDelta:         50 * time.Millisecond,
		PushBackoffMin:       400 * time.Millisecond,
		PushBackoffMax:       800 * time.Millisecond,
		PushHeartbeatTimeout: 2 * time.Second,
	}
	leafCfg.Origin, _ = url.Parse(parentSrv.URL)
	leafCfg.PushURL, _ = url.Parse(parentSrv.URL + "/events")
	leaf, err := New(leafCfg)
	if err != nil {
		t.Fatal(err)
	}
	leaf.Start()
	t.Cleanup(leaf.Close)

	type bareLeaf struct {
		sub         *push.Subscriber
		resetHellos atomic.Int64
	}
	bares := make([]*bareLeaf, 2)
	for i := range bares {
		b := &bareLeaf{}
		b.sub, err = push.NewSubscriber(push.SubscriberConfig{
			URL:     parentSrv.URL + "/events",
			OnEvent: func(push.Event) {},
			OnConnect: func(hello push.Event, resumed bool) {
				if hello.Reset && resumed {
					b.resetHellos.Add(1)
				}
			},
			BackoffMin: 400 * time.Millisecond,
			BackoffMax: 800 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		t.Cleanup(cancel)
		go b.sub.Run(ctx)
		bares[i] = b
	}
	if !waitFor(t, 3*time.Second, func() bool {
		return leaf.PushStats().Connected && parent.RelayStats().Hub.Subscribers == 3
	}) {
		t.Fatal("leaves never connected")
	}
	// Give every leaf a resume point beyond zero (a since=0 resume can
	// never Reset), and the proxy leaf a resident object to keep fresh.
	origin.Set("/page", []byte("v2"), "")
	rec := httptest.NewRecorder()
	leaf.ServeHTTP(rec, httptest.NewRequest("GET", "/page", nil))
	if rec.Code != 200 {
		t.Fatalf("admission: %d", rec.Code)
	}
	if !waitFor(t, 3*time.Second, func() bool { return leaf.PushStats().LastSeq >= 1 }) {
		t.Fatal("leaf never consumed the warm-up event")
	}
	relaySeqBefore := parent.RelayStats().Hub.Seq

	// Cut every leaf, then push a burst through the relay that outruns
	// its 8-event ring long before the 400ms reconnect backoff expires.
	parent.KillRelayStreams()
	for i := 0; i < 64; i++ {
		origin.Set(fmt.Sprintf("/burst/%d", i), []byte("x"), "")
	}
	origin.Set("/page", []byte("v3"), "") // the update the blind window hides
	if !waitFor(t, 3*time.Second, func() bool {
		return parent.RelayStats().Hub.Seq >= relaySeqBefore+65
	}) {
		t.Fatalf("burst never traversed the relay: %+v", parent.RelayStats().Hub)
	}

	// Every leaf resumes, is Reset exactly once, and stays connected.
	if !waitFor(t, 5*time.Second, func() bool {
		if parent.RelayStats().Hub.ResumeHoles != 3 {
			return false
		}
		for _, b := range bares {
			if b.resetHellos.Load() != 1 {
				return false
			}
		}
		return leaf.PushStats().Connected
	}) {
		t.Fatalf("resume Resets: hub %+v, bare resets %d/%d, leaf %+v",
			parent.RelayStats().Hub, bares[0].resetHellos.Load(), bares[1].resetHellos.Load(),
			leaf.PushStats())
	}
	if got := leaf.PushStats().Connects; got != 2 {
		t.Errorf("leaf connected %d times, want 2 (one cut, one resume)", got)
	}
	if parent.RelayStats().Hub.Resets != 0 {
		t.Errorf("mid-stream Resets %d; the overflow must Reset resumes, not live streams",
			parent.RelayStats().Hub.Resets)
	}

	// The fallback sweep bounds the staleness: the leaf's copy of /page
	// converges to the update hidden by the blind window within the
	// paper-mode TTR (plus generous CI slack), not the stretched one.
	start := time.Now()
	if !waitFor(t, 4*time.Second, func() bool {
		b, _ := leaf.CachedBody("/page")
		return string(b) == "v3"
	}) {
		t.Fatal("leaf never recovered the update hidden by the overflow")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("recovery took %v; the Reset sweep did not restore paper-mode scheduling", waited)
	}
	// A second reconnect must NOT re-Reset: the Reset hello fast-
	// forwarded every resume point.
	if parent.RelayStats().Hub.ResumeHoles != 3 {
		t.Errorf("ResumeHoles = %d after recovery, want exactly one per leaf (3)",
			parent.RelayStats().Hub.ResumeHoles)
	}
}
