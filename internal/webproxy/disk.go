package webproxy

// The persistent disk tier (Config.DiskDir): every validated object is
// written behind the sharded in-memory store through the shared
// finishRefresh path — asynchronously, so the hit path never touches
// disk — and three flows bring state back:
//
//   - rehydrate (startup): records within the grace window re-enter the
//     store born *suspect*, scheduled for an immediate validation poll
//     through the ordinary worker pool (so a restart cannot self-herd
//     the origin), and served as X-Cache: GRACE until confirmed. The Δt
//     guarantee across a restart is therefore explicit: at most
//     DiskGrace plus the validation queue delay, never silently
//     unbounded.
//   - promote (demand): a request for a key that lives only on disk —
//     demoted by CLOCK replacement or beyond the grace window at
//     startup — revalidates it with a conditional fetch before serving,
//     reusing the disk body on a 304. Promotion runs inside the
//     admission singleflight, so the re-admission race resolves to one
//     origin fetch.
//   - demote (replacement): CLOCK victims keep their disk record (the
//     write-behind already persisted their last validated state), so
//     capacity is disk-bound, not RAM-bound. Admin Evict purges both
//     tiers.

import (
	"time"

	"broadway/internal/diskstore"
	"broadway/internal/httpx"
)

// persistEntry snapshots e's validated state into the disk tier's
// write-behind queue. Called from finishRefresh (every poll, trigger,
// and pushed-value install) and from the admission paths; a no-op when
// persistence is disabled or the entry was never admitted.
func (p *Proxy) persistEntry(e *entry) {
	if p.disk == nil || e.capped {
		return
	}
	e.mu.RLock()
	rec := diskstore.Record{
		Key:          e.key,
		Group:        e.group,
		ContentType:  e.contentType,
		CacheControl: e.cacheControl,
		LastMod:      e.lastMod,
		HasLastMod:   e.hasLastMod,
		ValidatedAt:  e.validatedAt,
		Delta:        e.delta,
		GroupDelta:   e.groupDelta,
		ValueDelta:   e.valueDelta,
	}
	// A paired M_v policy is half of a shared controller whose split
	// tolerance dies with the pair; persist TTR zero and let the
	// rehydrated entry re-learn (and re-pair) from scratch.
	if !e.paired {
		if t, ok := e.policy.(interface{ TTR() time.Duration }); ok {
			rec.TTR = t.TTR()
		}
	}
	body := e.body
	e.mu.RUnlock()
	p.disk.Put(rec, body)
}

// demote finishes a replacement eviction: the victims are unwound from
// scheduler, groups, and ledger exactly as before, but their disk
// records — already current via the write-behind — survive, so the
// next request promotes from disk instead of paying a cold fetch.
func (p *Proxy) demote(victims []*entry) {
	p.unwind(victims)
	if p.disk == nil {
		return
	}
	for _, v := range victims {
		if _, ok := p.disk.Meta(v.key); ok {
			p.diskDemotions.Add(1)
		}
	}
}

// promote re-admits a disk-resident object through a validating
// conditional fetch: a 304 reuses the disk body (metadata and learned
// TTR restored), a 200 installs the fresh version. Either way the entry
// re-enters the store validated — never suspect — so promotion cannot
// widen the Δt bound. Callers hold the admission singleflight slot.
func (p *Proxy) promote(key string, rec diskstore.Record, body []byte) (*entry, error) {
	since := rec.ValidatedAt
	if rec.HasLastMod {
		since = rec.LastMod
	}
	resp, err := p.fetch(key, since)
	if err != nil {
		// No unvalidated stale serves on the demand path: the client
		// gets the same 502 a cold miss would. (Grace-mode serving is a
		// startup decision, made explicitly and labeled.)
		return nil, err
	}
	now := p.cfg.Clock()
	a := admission{
		validatedAt: now,
		delta:       p.cfg.DefaultDelta,
		groupDelta:  p.cfg.DefaultGroupDelta,
		valueDelta:  rec.ValueDelta,
		group:       rec.Group,
		initialPoll: true,
	}
	// Tolerance resolution: config defaults, overlaid by the persisted
	// record, overlaid by whatever the origin's response advertises now
	// — the origin's current directives always win, the record only
	// fills silence (a 304 with no Cache-Control).
	if rec.Delta > 0 {
		a.delta = rec.Delta
	}
	if rec.GroupDelta > 0 {
		a.groupDelta = rec.GroupDelta
	}
	if tol, err := httpx.TolerancesFrom(resp.header); err == nil {
		if tol.Delta > 0 {
			a.delta = tol.Delta
		}
		if tol.GroupDelta > 0 {
			a.groupDelta = tol.GroupDelta
		}
		if tol.ValueDelta > 0 {
			a.valueDelta = tol.ValueDelta
		}
		if tol.Group != "" {
			a.group = tol.Group
		}
	}
	if resp.notModified {
		a.body = body
		a.contentType = rec.ContentType
		a.cacheControl = rec.CacheControl
		if cc := resp.header.Get("Cache-Control"); cc != "" {
			a.cacheControl = cc
		}
		a.lastMod, a.hasLastMod = rec.LastMod, rec.HasLastMod
		// The copy is unchanged, so the TTR learned across the object's
		// whole history is still the right schedule.
		a.restoreTTR = rec.TTR
	} else {
		a.body = resp.body
		a.contentType = resp.contentType
		a.cacheControl = resp.header.Get("Cache-Control")
		a.lastMod, a.hasLastMod = resp.lastMod, resp.hasLastMod
	}

	var admittedValue float64
	var admittedHasValue bool
	if v, ok := parseValueBody(a.body); ok && a.valueDelta > 0 {
		admittedValue, admittedHasValue = v, true
	}

	e, inserted := p.installEntry(key, a)
	p.diskPromotions.Add(1)
	if inserted {
		p.persistEntry(e)
	}
	if obs := p.cfg.PollObserver; obs != nil {
		obs(PollObservation{
			Key: key, At: now, Modified: !resp.notModified, Initial: true,
			Value: admittedValue, HasValue: admittedHasValue,
		})
	}
	return e, nil
}

// rehydrate re-admits disk records into the in-memory store at startup.
// Records within the grace window come back warm — born suspect, with
// an immediate validation poll scheduled (dispatched by the worker pool
// once Start runs, which rate-limits the origin herd) — while older
// records stay on disk until a request promotes them through a
// validating fetch.
func (p *Proxy) rehydrate() {
	now := p.cfg.Clock()
	for _, key := range p.disk.Keys() {
		rec, body, ok := p.disk.Get(key)
		if !ok {
			continue
		}
		if now.Sub(rec.ValidatedAt) > p.cfg.DiskGrace {
			// Too stale for grace-mode serving (with DiskGrace < 0,
			// everything is): left demoted, promoted on demand.
			continue
		}
		a := admission{
			body:         body,
			contentType:  rec.ContentType,
			cacheControl: rec.CacheControl,
			lastMod:      rec.LastMod,
			hasLastMod:   rec.HasLastMod,
			validatedAt:  rec.ValidatedAt,
			delta:        p.cfg.DefaultDelta,
			groupDelta:   p.cfg.DefaultGroupDelta,
			valueDelta:   rec.ValueDelta,
			group:        rec.Group,
			restoreTTR:   rec.TTR,
			suspect:      true,
			scheduleAt:   now, // immediate validation poll
		}
		if rec.Delta > 0 {
			a.delta = rec.Delta
		}
		if rec.GroupDelta > 0 {
			a.groupDelta = rec.GroupDelta
		}
		if _, inserted := p.installEntry(key, a); inserted {
			p.diskRehydrated.Add(1)
		}
	}
}

// DiskStats reports the persistent tier's state and lifetime counters;
// Enabled false (the zero value) means Config.DiskDir was not set.
type DiskStats struct {
	// Enabled reports whether the disk tier is configured.
	Enabled bool
	// Records and Bytes are the durable index's current footprint.
	Records int
	Bytes   int64
	// PendingWrites is the write-behind queue depth (coalesced keys).
	PendingWrites int
	// Writes and WriteErrors count applied and failed persist
	// operations; Deletes counts applied purges; Evictions counts
	// records dropped by the disk byte budget (oldest validated first).
	Writes      uint64
	WriteErrors uint64
	Deletes     uint64
	Evictions   uint64
	// Demotions counts replacement victims whose disk record made the
	// eviction a tier transition instead of a loss; Promotions counts
	// disk records re-admitted through a validating fetch.
	Demotions  uint64
	Promotions uint64
	// Rehydrated counts entries restored warm at startup; GraceServes
	// counts hits served as X-Cache: GRACE before re-validation.
	Rehydrated  uint64
	GraceServes uint64
}

// DiskStats returns the disk tier's counters (zero value when disabled).
func (p *Proxy) DiskStats() DiskStats {
	if p.disk == nil {
		return DiskStats{}
	}
	st := p.disk.Stats()
	return DiskStats{
		Enabled:       true,
		Records:       st.Records,
		Bytes:         st.Bytes,
		PendingWrites: st.PendingWrites,
		Writes:        st.Writes,
		WriteErrors:   st.WriteErrors,
		Deletes:       st.Deletes,
		Evictions:     st.Evictions,
		Demotions:     p.diskDemotions.Load(),
		Promotions:    p.diskPromotions.Load(),
		Rehydrated:    p.diskRehydrated.Load(),
		GraceServes:   p.diskGraceServes.Load(),
	}
}

// FlushDisk drains the write-behind queue; a no-op when persistence is
// disabled. Tests (and the crash smoke's graceful path) use it to make
// "persisted" deterministic.
func (p *Proxy) FlushDisk() {
	if p.disk != nil {
		p.disk.Flush()
	}
}
