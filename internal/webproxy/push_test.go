package webproxy

import (
	"fmt"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"broadway/internal/core"
	"broadway/internal/httpx"
	"broadway/internal/webserver"
)

// newPushSetup wires a push-enabled origin behind a hybrid proxy. The
// origin heartbeats fast and the subscriber's watchdog is tight so chaos
// tests detect dead channels quickly.
func newPushSetup(t *testing.T, cfg Config) *liveSetup {
	t.Helper()
	origin := webserver.NewOrigin(
		webserver.WithHistoryExtension(true),
		webserver.WithPushHeartbeat(25*time.Millisecond),
	)
	originSrv := httptest.NewServer(origin)
	t.Cleanup(originSrv.Close)

	u, err := url.Parse(originSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	pushURL, _ := url.Parse(originSrv.URL + "/events")
	cfg.Origin = u
	cfg.PushURL = pushURL
	if cfg.PushBackoffMin == 0 {
		cfg.PushBackoffMin = 5 * time.Millisecond
	}
	if cfg.PushBackoffMax == 0 {
		cfg.PushBackoffMax = 50 * time.Millisecond
	}
	if cfg.PushHeartbeatTimeout == 0 {
		cfg.PushHeartbeatTimeout = 200 * time.Millisecond
	}
	if cfg.Bounds == (core.TTRBounds{}) {
		cfg.Bounds = core.TTRBounds{Min: 50 * time.Millisecond, Max: 400 * time.Millisecond}
	}
	if cfg.DefaultDelta == 0 {
		cfg.DefaultDelta = 50 * time.Millisecond
	}
	px, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	px.Start()
	t.Cleanup(px.Close)
	proxySrv := httptest.NewServer(px)
	t.Cleanup(proxySrv.Close)
	return &liveSetup{origin: origin, originSrv: originSrv, proxy: px, proxySrv: proxySrv}
}

func waitPushConnected(t *testing.T, px *Proxy) {
	t.Helper()
	if !waitFor(t, 3*time.Second, func() bool { return px.PushStats().Connected }) {
		t.Fatal("push channel never connected")
	}
}

// waitScheduledAfterPoll waits until key has completed at least minPolls
// polls AND sits rescheduled on the heap, then returns that schedule
// snapshot. Gating on the poll counter alone is racy: pollEntry bumps
// polls before rescheduleHybrid runs, so a preempted poller could
// expose the pre-stretch admission schedule to the assertion.
func waitScheduledAfterPoll(t *testing.T, px *Proxy, key string, minPolls uint64) (base, next time.Time) {
	t.Helper()
	e := px.lookup(key)
	if e == nil {
		t.Fatalf("%s not resident", key)
	}
	ok := waitFor(t, 3*time.Second, func() bool {
		if e.polls.Load() < minPolls {
			return false
		}
		px.schedMu.Lock()
		scheduled := e.item != nil
		if scheduled {
			base, next = e.baseNextAt, e.nextAt
		}
		px.schedMu.Unlock()
		return scheduled
	})
	if !ok {
		t.Fatalf("%s never rescheduled after %d polls", key, minPolls)
	}
	return base, next
}

func TestPushEventTriggersImmediateRefresh(t *testing.T) {
	// TTR bounds so wide that pull alone could not possibly observe the
	// update inside the assertion window: freshness must come from push.
	s := newPushSetup(t, Config{
		DefaultDelta: time.Minute,
		Bounds:       core.TTRBounds{Min: time.Minute, Max: time.Hour},
	})
	s.origin.Set("/page", []byte("v1"), "")
	waitPushConnected(t, s.proxy)
	s.get(t, "/page")

	s.origin.Set("/page", []byte("v2"), "")
	ok := waitFor(t, 3*time.Second, func() bool {
		b, _ := s.proxy.CachedBody("/page")
		return string(b) == "v2"
	})
	if !ok {
		t.Fatal("pushed invalidation did not refresh the cached copy")
	}
	if st := s.proxy.ObjectStats("/page"); st.Pushed == 0 {
		t.Errorf("no pushed poll recorded: %+v", st)
	}
	if cs := s.proxy.CacheStats(); cs.PushPolls == 0 || cs.PushEvents == 0 || !cs.PushConnected {
		t.Errorf("CacheStats push counters: %+v", cs)
	}
}

func TestPushEventForNonResidentObjectIsDropped(t *testing.T) {
	s := newPushSetup(t, Config{})
	waitPushConnected(t, s.proxy)
	s.origin.Set("/never-requested", []byte("v1"), "")
	s.origin.Set("/never-requested", []byte("v2"), "")
	if !waitFor(t, 3*time.Second, func() bool { return s.proxy.PushStats().Dropped >= 1 }) {
		t.Fatalf("events for non-resident objects not dropped: %+v", s.proxy.PushStats())
	}
	if s.origin.Polls() != 0 {
		t.Errorf("proxy polled the origin %d times for an object nobody requested", s.origin.Polls())
	}
}

func TestPushStretchesRegularPollsWhileHealthy(t *testing.T) {
	s := newPushSetup(t, Config{
		PushStretch: 8,
		Bounds:      core.TTRBounds{Min: 50 * time.Millisecond, Max: 10 * time.Second},
	})
	s.origin.Set("/static", []byte("unchanging"), "")
	waitPushConnected(t, s.proxy)
	s.get(t, "/static")

	// After the first regular poll completes on a healthy channel the
	// schedule entry must carry a stretched instant beyond its
	// paper-mode baseline.
	base, next := waitScheduledAfterPoll(t, s.proxy, "/static", 2)
	if !base.Before(next) {
		t.Errorf("healthy channel did not stretch: base %v next %v", base, next)
	}
}

func TestUnpushableKeyIsNeverStretched(t *testing.T) {
	// An object whose key cannot fit an invalidation frame will never be
	// announced by the origin; stretching its TTR would silently widen
	// its Δt bound to the stretched interval with nothing covering the
	// gap. Such objects must keep pure-polling schedules even while the
	// channel is healthy.
	s := newPushSetup(t, Config{
		PushStretch: 8,
		Bounds:      core.TTRBounds{Min: 50 * time.Millisecond, Max: 10 * time.Second},
	})
	huge := "/" + strings.Repeat("k", 4200)
	s.origin.Set(huge, []byte("v1"), "")
	s.origin.Set("/normal", []byte("v1"), "")
	// An origin path containing a literal '?' is cached under %3F — an
	// event for it ("/a?b") can never resolve to that cache key.
	s.origin.Set("/a?b", []byte("v1"), "")
	waitPushConnected(t, s.proxy)
	s.get(t, huge)
	s.get(t, "/normal")
	s.get(t, "/a%3Fb")
	// A query-bearing cache key can never match a path-granular event
	// either (the origin serves /normal for any query).
	s.get(t, "/normal?sym=A")

	check := func(label, key string, wantStretched bool) {
		base, next := waitScheduledAfterPoll(t, s.proxy, key, 2)
		if got := base.Before(next); got != wantStretched {
			t.Errorf("%s: stretched=%v want %v (base %v next %v)", label, got, wantStretched, base, next)
		}
	}
	check("oversized key", huge, false)
	check("normal key", "/normal", true)
	check("literal-? key", "/a%3Fb", false)
	check("query-bearing key", "/normal?sym=A", false)
	if s.origin.PushOversized() == 0 {
		t.Error("origin never dropped the oversized event")
	}
}

func TestPushDisconnectFallsBackWithinOneTTR(t *testing.T) {
	s := newPushSetup(t, Config{
		PushStretch: 50, // stretch hard: fallback must not inherit it
		Bounds:      core.TTRBounds{Min: 50 * time.Millisecond, Max: 10 * time.Second},
	})
	s.origin.Set("/page", []byte("v1"), "")
	waitPushConnected(t, s.proxy)
	s.get(t, "/page")

	// Let at least one regular poll stretch the schedule far out.
	if base, next := waitScheduledAfterPoll(t, s.proxy, "/page", 2); !base.Before(next) {
		t.Fatalf("schedule not stretched before the kill (base %v next %v)", base, next)
	}

	// Kill the channel. The origin updates while it is down; only the
	// pulled-back paper-mode schedule can observe the change.
	s.origin.SetPushAvailable(false)
	if !waitFor(t, 3*time.Second, func() bool { return s.proxy.PushStats().Fallbacks >= 1 }) {
		t.Fatal("fallback never triggered")
	}
	s.origin.Set("/page", []byte("v2"), "")
	// Pure paper-mode staleness is bounded by the current TTR; with the
	// update landing just after a poll the copy must refresh within one
	// full TTR (≤ Bounds.Max·linear growth, here well under 2s since
	// only a few quiet polls have grown it from 50ms).
	start := time.Now()
	ok := waitFor(t, 4*time.Second, func() bool {
		b, _ := s.proxy.CachedBody("/page")
		return string(b) == "v2"
	})
	if !ok {
		t.Fatal("fallback polling never observed the update")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("fallback refresh took %v; sweep did not restore paper-mode scheduling", waited)
	}
	if s.proxy.PushStats().Connected {
		t.Error("channel still marked healthy after the origin disabled it")
	}
}

func TestPushReconnectRearmsChannel(t *testing.T) {
	s := newPushSetup(t, Config{
		DefaultDelta: time.Minute,
		Bounds:       core.TTRBounds{Min: time.Minute, Max: time.Hour},
	})
	s.origin.Set("/page", []byte("v1"), "")
	waitPushConnected(t, s.proxy)
	s.get(t, "/page")

	s.origin.SetPushAvailable(false)
	if !waitFor(t, 3*time.Second, func() bool { return !s.proxy.PushStats().Connected }) {
		t.Fatal("disconnect never detected")
	}
	connectsBefore := s.proxy.PushStats().Connects
	s.origin.SetPushAvailable(true)
	if !waitFor(t, 3*time.Second, func() bool {
		st := s.proxy.PushStats()
		return st.Connected && st.Connects > connectsBefore
	}) {
		t.Fatal("channel never re-armed")
	}
	// A post-reconnect update must arrive via push again, long before
	// the minute-long TTR could observe it. (The event may even be
	// replayed from the origin's buffer — either path must refresh.)
	s.origin.Set("/page", []byte("v3"), "")
	ok := waitFor(t, 3*time.Second, func() bool {
		b, _ := s.proxy.CachedBody("/page")
		return string(b) == "v3"
	})
	if !ok {
		t.Fatal("re-armed channel did not deliver the update")
	}
}

func TestPushedPollTriggersGroupMembers(t *testing.T) {
	// The story updates arrive via push; the photo shares its group. A
	// pushed poll that confirms an update must impose the same mutual
	// obligation a regular poll would, so the photo gets triggered even
	// though its own TTR is a minute out.
	s := newPushSetup(t, Config{
		Mode:              core.TriggerAll,
		DefaultDelta:      time.Minute,
		DefaultGroupDelta: 5 * time.Millisecond,
		Bounds:            core.TTRBounds{Min: time.Minute, Max: time.Hour},
	})
	s.origin.Set("/story", []byte("story v1"), "text/html")
	s.origin.Set("/photo", []byte("photo v1"), "image/png")
	for _, path := range []string{"/story", "/photo"} {
		s.origin.SetTolerances(path, httpx.Tolerances{Group: "news"})
	}
	waitPushConnected(t, s.proxy)
	s.get(t, "/story")
	time.Sleep(30 * time.Millisecond) // desynchronize the two schedules
	s.get(t, "/photo")

	rev := 0
	ok := waitFor(t, 5*time.Second, func() bool {
		rev++
		s.origin.Set("/story", []byte(fmt.Sprintf("story v%d", rev)), "text/html")
		return s.proxy.ObjectStats("/photo").Triggered > 0
	})
	if !ok {
		t.Fatalf("pushed story updates never triggered the photo (story %+v photo %+v)",
			s.proxy.ObjectStats("/story"), s.proxy.ObjectStats("/photo"))
	}
}

// TestPushChaosSoak is the chaos battery of ISSUE 3: a churning origin
// whose event stream is repeatedly killed mid-burst. Throughout, the
// staleness of everything the proxy serves must stay within the pure-
// polling bound (TTR growth capped at Bounds.Max, plus scheduling and
// HTTP slack) — the channel may only ever make freshness better, never
// worse — and after each cut the subscriber must re-arm.
func TestPushChaosSoak(t *testing.T) {
	const (
		delta   = 50 * time.Millisecond
		ttrMax  = 300 * time.Millisecond
		objects = 4
	)
	s := newPushSetup(t, Config{
		DefaultDelta: delta,
		PushStretch:  10,
		Bounds:       core.TTRBounds{Min: delta, Max: ttrMax},
	})

	// revisions[i] records when each revision of object i was published;
	// reads through the proxy are checked against it.
	type revLog struct {
		mu    sync.Mutex
		times []time.Time
	}
	logs := make([]*revLog, objects)
	for i := range logs {
		logs[i] = &revLog{times: []time.Time{time.Now()}}
		s.origin.Set(fmt.Sprintf("/obj/%d", i), []byte("0"), "")
	}
	waitPushConnected(t, s.proxy)
	for i := 0; i < objects; i++ {
		s.get(t, fmt.Sprintf("/obj/%d", i))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Churn: update every object in bursts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rev := 0
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			rev++
			for i := 0; i < objects; i++ {
				logs[i].mu.Lock()
				logs[i].times = append(logs[i].times, time.Now())
				logs[i].mu.Unlock()
				s.origin.Set(fmt.Sprintf("/obj/%d", i), []byte(strconv.Itoa(rev)), "")
			}
		}
	}()

	// Chaos: cut the stream mid-burst, revive it, repeat.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(150 * time.Millisecond):
				s.origin.KillPushStreams()
			}
			select {
			case <-stop:
				return
			case <-time.After(120 * time.Millisecond):
				s.origin.SetPushAvailable(false)
			}
			select {
			case <-stop:
				return
			case <-time.After(150 * time.Millisecond):
				s.origin.SetPushAvailable(true)
			}
		}
	}()

	// Readers: hammer the proxy and score staleness of every response.
	var staleViolations atomic.Int64
	// The serve-staleness bound: one full grown TTR, plus the admission
	// fetch/backoff slack. Generous against CI scheduling noise; the
	// point is the ceiling exists and survives chaos.
	bound := 2*ttrMax + time.Second
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := int(time.Now().UnixNano()) % objects
				body, _ := s.get(t, fmt.Sprintf("/obj/%d", i))
				served, err := strconv.Atoi(body)
				if err != nil {
					continue
				}
				now := time.Now()
				logs[i].mu.Lock()
				times := logs[i].times
				// The served revision became stale when revision
				// served+1 was published.
				if served+1 < len(times) {
					if age := now.Sub(times[served+1]); age > bound {
						staleViolations.Add(1)
					}
				}
				logs[i].mu.Unlock()
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}

	time.Sleep(3 * time.Second)
	close(stop)
	wg.Wait()

	if v := staleViolations.Load(); v > 0 {
		t.Errorf("%d responses exceeded the pure-polling staleness bound %v", v, bound)
	}
	st := s.proxy.PushStats()
	if st.Fallbacks == 0 {
		t.Error("chaos never produced a fallback; the test exercised nothing")
	}
	if st.Connects < 2 {
		t.Errorf("subscriber connected only %d times across repeated cuts", st.Connects)
	}
	// The channel must end the run re-armed (give it a beat to settle).
	if !waitFor(t, 3*time.Second, func() bool { return s.proxy.PushStats().Connected }) {
		t.Error("channel did not re-arm after the final revival")
	}
}
