package webproxy

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"broadway/internal/core"
	"broadway/internal/httpx"
	"broadway/internal/metrics"
	simorigin "broadway/internal/origin"
	simproxy "broadway/internal/proxy"
	"broadway/internal/sim"
	"broadway/internal/simtime"
	"broadway/internal/trace"
	"broadway/internal/tracegen"
	"broadway/internal/webserver"
)

// This file is the trace-replay conformance battery of ISSUE 3: the
// live proxy is driven through internal/tracegen presets on a stepped
// virtual clock ("simtime" for the live stack), with the push channel on
// and off, and the Δt / mutual-consistency violation rates it actually
// delivers are compared against what the discrete-event simulator
// predicts for the same trace and policy parameters.
//
// Replay discipline: the driver holds the virtual clock still until the
// proxy is quiescent (no queued or in-flight polls, next refresh in the
// future, and — with push on — every published event fully processed),
// then advances it directly to the next interesting instant: a trace
// update or the earliest scheduled refresh. Origin updates land on whole
// seconds while refresh instants carry a sub-second phase, so the two
// event families never collide and every run is deterministic.

// simClock is a virtual clock stepped by the replay driver.
type simClock struct {
	base time.Time
	off  atomic.Int64 // nanoseconds since base
}

func newSimClock() *simClock {
	// A fixed, whole-second epoch: HTTP dates are second-granular and
	// determinism requires every run to see identical timestamps.
	return &simClock{base: time.Unix(1_700_000_000, 0)}
}

func (c *simClock) Now() time.Time { return c.base.Add(time.Duration(c.off.Load())) }

func (c *simClock) AdvanceTo(at time.Time) {
	d := at.Sub(c.base)
	for {
		cur := c.off.Load()
		if int64(d) <= cur || c.off.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// clipRound clips a trace to the horizon and rounds update instants to
// whole seconds (the webserver origin is HTTP-date-granular), keeping
// them strictly increasing and strictly positive.
func clipRound(tr *trace.Trace, horizon time.Duration) *trace.Trace {
	out := &trace.Trace{Name: tr.Name, Kind: tr.Kind, Duration: horizon, InitialValue: tr.InitialValue}
	prev := time.Duration(0)
	for _, u := range tr.Updates {
		at := u.At.Round(time.Second)
		if at <= prev {
			at = prev + time.Second
		}
		if at > horizon {
			break
		}
		out.Updates = append(out.Updates, trace.Update{At: at, Value: u.Value})
		prev = at
	}
	if err := out.Validate(); err != nil {
		panic(err)
	}
	return out
}

// replayObject is one object driven through the live proxy.
type replayObject struct {
	path string
	tr   *trace.Trace
	tol  httpx.Tolerances
	// inject, when set, runs after each of the object's origin updates
	// (with the 1-based revision) — the corruption hook value-domain
	// conformance uses to interleave hostile events with clean ones.
	inject func(o *webserver.Origin, rev int)
	// pad, when positive, appends that many whitespace bytes to every
	// revision's body. Whitespace keeps a value trace parseable (the
	// proxy trims before reading the decimal) while making the object
	// large enough to exercise the chunk and delta rungs of the ladder.
	pad int
}

// replayBody renders the origin body for revision rev of o (rev 0 is
// the pre-trace seed). Temporal traces serve versioned text; value
// traces serve the traced value as a decimal body, which is what makes
// the live proxy run the Δv machinery and lets the evaluator compare
// cached values against the trace's ground truth.
func replayBody(o replayObject, rev int) []byte {
	var b []byte
	if o.tr.Kind == trace.Value {
		v := o.tr.InitialValue
		if rev > 0 {
			v = o.tr.Updates[rev-1].Value
		}
		b = []byte(strconv.FormatFloat(v, 'f', -1, 64) + "\n")
	} else {
		b = []byte(fmt.Sprintf("%s rev %d", o.path, rev))
	}
	if o.pad > 0 {
		b = append(b, bytes.Repeat([]byte(" "), o.pad)...)
	}
	return b
}

// replayResult carries the measured side of one conformance run.
type replayResult struct {
	logs        map[string][]metrics.Refresh
	originPolls uint64
	pushStats   PushStats
	// applied counts observations that installed a pushed payload with
	// no origin request; pushedPolls counts pushed CONFIRMATION polls
	// (the fallback rung) — zero on a clean value-carrying run.
	applied     uint64
	pushedPolls uint64
}

// admissionPhase offsets object admission from the whole-second grid the
// trace updates live on, so scheduled refreshes (admission + TTR sums)
// never collide with update instants and replay order stays
// deterministic.
const admissionPhase = 37 * time.Millisecond

// replayTrace drives objs through a live origin+proxy pair on the
// stepped clock and returns the refresh logs recorded by PollObserver.
func replayTrace(t *testing.T, objs []replayObject, horizon time.Duration, cfg Config, pushOn bool) replayResult {
	t.Helper()
	clk := newSimClock()

	originOpts := []webserver.Option{
		webserver.WithClock(clk.Now),
		webserver.WithHistoryExtension(true),
		webserver.WithPushEvents(""),
	}
	if cfg.PushValues {
		originOpts = append(originOpts, webserver.WithPushValues(0))
	}
	origin := webserver.NewOrigin(originOpts...)
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()

	var mu sync.Mutex
	logs := make(map[string][]metrics.Refresh)
	var applied, pushedPolls uint64
	u, err := url.Parse(originSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Origin = u
	cfg.Clock = clk.Now
	cfg.PollWorkers = 1 // full determinism: every poll serializes
	cfg.PollObserver = func(o PollObservation) {
		mu.Lock()
		logs[o.Key] = append(logs[o.Key], metrics.Refresh{
			At:        simtime.At(o.At.Sub(clk.base)),
			Modified:  o.Modified,
			Value:     o.Value,
			Triggered: o.Triggered || o.Pushed,
		})
		if o.Applied {
			applied++
		} else if o.Pushed {
			pushedPolls++
		}
		mu.Unlock()
	}
	if pushOn {
		pushURL, _ := url.Parse(originSrv.URL + "/events")
		cfg.PushURL = pushURL
		cfg.PushHeartbeatTimeout = -1 // the watchdog is wall-clocked; disable it
	}
	px, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	px.Start()
	defer px.Close()

	if pushOn {
		if !waitFor(t, 5*time.Second, func() bool { return px.PushStats().Connected }) {
			t.Fatal("push channel never connected")
		}
	}

	// Seed version 0 of every object at the epoch (after the channel is
	// up, so sequence tracking sees every event from the start).
	for _, o := range objs {
		origin.Set(o.path, replayBody(o, 0), "")
		if !o.tol.IsZero() {
			origin.SetTolerances(o.path, o.tol)
		}
	}

	quiesce := func() {
		deadline := time.Now().Add(10 * time.Second)
		for {
			seqOK := !pushOn || px.PushStats().LastSeq >= origin.PushSeq()
			inFlight := px.InFlightPolls()
			next, ok := px.NextRefreshAt()
			if seqOK && inFlight == 0 && (!ok || next.After(clk.Now())) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("replay never quiesced: inflight=%d next=%v now=%v seqOK=%v",
					inFlight, next, clk.Now(), seqOK)
			}
			px.Kick()
			time.Sleep(100 * time.Microsecond)
		}
	}
	quiesce()

	// Admit every object off the whole-second grid.
	clk.AdvanceTo(clk.base.Add(admissionPhase))
	px.Kick()
	for _, o := range objs {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", o.path, nil)
		px.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("admission of %s: %d %s", o.path, rec.Code, rec.Body.String())
		}
	}
	quiesce()

	// Merge the per-object update streams into one replay schedule.
	type updateEvent struct {
		at  time.Duration
		obj int
		rev int
	}
	var updates []updateEvent
	for i, o := range objs {
		for r, u := range o.tr.Updates {
			updates = append(updates, updateEvent{at: u.At, obj: i, rev: r + 1})
		}
	}
	// The per-trace streams are sorted; a simple stable merge by instant
	// (object index breaking ties) keeps replay order deterministic.
	for i := 1; i < len(updates); i++ {
		for j := i; j > 0 && (updates[j].at < updates[j-1].at ||
			(updates[j].at == updates[j-1].at && updates[j].obj < updates[j-1].obj)); j-- {
			updates[j], updates[j-1] = updates[j-1], updates[j]
		}
	}

	end := clk.base.Add(horizon)
	ui := 0
	for {
		var stepAt time.Time
		haveStep := false
		if ui < len(updates) {
			stepAt = clk.base.Add(updates[ui].at)
			haveStep = true
		}
		if next, ok := px.NextRefreshAt(); ok && !next.After(end) {
			if !haveStep || next.Before(stepAt) {
				stepAt = next
				haveStep = true
			}
		}
		if !haveStep || stepAt.After(end) {
			break
		}
		clk.AdvanceTo(stepAt)
		// Apply every origin update due at this instant before waking
		// the proxy: a poll at t must observe the origin's state at t.
		for ui < len(updates) && !clk.base.Add(updates[ui].at).After(stepAt) {
			o := objs[updates[ui].obj]
			origin.Set(o.path, replayBody(o, updates[ui].rev), "")
			if o.inject != nil {
				o.inject(origin, updates[ui].rev)
			}
			ui++
		}
		px.Kick()
		quiesce()
	}
	clk.AdvanceTo(end)
	px.Kick()
	quiesce()

	mu.Lock()
	defer mu.Unlock()
	return replayResult{
		logs:        logs,
		originPolls: origin.Polls(),
		pushStats:   px.PushStats(),
		applied:     applied,
		pushedPolls: pushedPolls,
	}
}

// predictTemporal runs the discrete-event simulator over the same trace
// and parameters and evaluates the paper's Δt metrics.
func predictTemporal(t *testing.T, tr *trace.Trace, delta time.Duration, bounds core.TTRBounds) (metrics.TemporalReport, uint64) {
	t.Helper()
	eng := sim.New(0)
	org := simorigin.New()
	if err := org.Host("obj", tr, true); err != nil {
		t.Fatal(err)
	}
	px := simproxy.New(eng, org)
	if err := px.RegisterObject("obj", core.NewLIMD(core.LIMDConfig{Delta: delta, Bounds: bounds})); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(simtime.At(tr.Duration)); err != nil {
		t.Fatal(err)
	}
	return metrics.EvaluateTemporal(tr, px.Log("obj"), delta, tr.Duration), org.TotalPolls()
}

// predictMutual runs the simulator over a grouped pair with triggered
// mutual consistency.
func predictMutual(t *testing.T, trA, trB *trace.Trace, delta, groupDelta time.Duration, bounds core.TTRBounds) metrics.MutualTemporalReport {
	t.Helper()
	eng := sim.New(0)
	org := simorigin.New()
	if err := org.Host("a", trA, true); err != nil {
		t.Fatal(err)
	}
	if err := org.Host("b", trB, true); err != nil {
		t.Fatal(err)
	}
	px := simproxy.New(eng, org)
	for id, tr := range map[core.ObjectID]*trace.Trace{"a": trA, "b": trB} {
		_ = tr
		if err := px.RegisterObject(id, core.NewLIMD(core.LIMDConfig{Delta: delta, Bounds: bounds})); err != nil {
			t.Fatal(err)
		}
	}
	ctrl := core.NewMutualTimeController(core.MutualTimeConfig{Delta: groupDelta, Mode: core.TriggerAll})
	if err := px.RegisterGroup([]core.ObjectID{"a", "b"}, ctrl); err != nil {
		t.Fatal(err)
	}
	horizon := trA.Duration
	if trB.Duration < horizon {
		horizon = trB.Duration
	}
	if err := eng.Run(simtime.At(horizon)); err != nil {
		t.Fatal(err)
	}
	return metrics.EvaluateMutualTemporal(trA, trB, px.Log("a"), px.Log("b"), groupDelta, horizon)
}

// violationRate is violations per poll (the complement of Eq. 13).
func violationRate(violations, polls int) float64 {
	if polls == 0 {
		return 0
	}
	return float64(violations) / float64(polls)
}

// Conformance parameters: Δ = 60s with TTR ∈ [60s, 30min] over the first
// eight hours of the CNN/FN preset — the paper's operating point scaled
// to a CI-sized window.
const (
	confDelta   = time.Minute
	confHorizon = 8 * time.Hour
)

var confBounds = core.TTRBounds{Min: time.Minute, Max: 30 * time.Minute}

func confTrace(t *testing.T) *trace.Trace {
	tr := clipRound(tracegen.CNNFN(), confHorizon)
	if tr.NumUpdates() < 10 {
		t.Fatalf("clipped trace has only %d updates; the battery would prove nothing", tr.NumUpdates())
	}
	return tr
}

// TestConformanceTemporalPullMatchesSimulator replays the CNN/FN preset
// through the live proxy in pure paper mode and checks the measured Δt
// fidelity lands within tolerance of the simulator's prediction.
func TestConformanceTemporalPullMatchesSimulator(t *testing.T) {
	tr := confTrace(t)
	pred, _ := predictTemporal(t, tr, confDelta, confBounds)

	res := replayTrace(t, []replayObject{{path: "/news", tr: tr}}, confHorizon, Config{
		DefaultDelta: confDelta,
		Bounds:       confBounds,
	}, false)
	log := res.logs["/news"]
	if len(log) < 3 {
		t.Fatalf("live replay recorded only %d polls", len(log))
	}
	meas := metrics.EvaluateTemporal(tr, log, confDelta, confHorizon)
	t.Logf("predicted: %v", pred)
	t.Logf("measured:  %v (origin polls %d)", meas, res.originPolls)

	const tol = 0.08
	if d := meas.FidelityByViolations - pred.FidelityByViolations; d < -tol || d > tol {
		t.Errorf("per-poll fidelity diverged: measured %.3f predicted %.3f",
			meas.FidelityByViolations, pred.FidelityByViolations)
	}
	if d := meas.FidelityByTime - pred.FidelityByTime; d < -tol || d > tol {
		t.Errorf("time-weighted fidelity diverged: measured %.3f predicted %.3f",
			meas.FidelityByTime, pred.FidelityByTime)
	}
	// The poll volumes must be of the same magnitude too — matching
	// fidelity at wildly different cost would mean the live proxy is not
	// running the paper's policy.
	if lo, hi := pred.Polls/2, pred.Polls*2; meas.Polls < lo || meas.Polls > hi {
		t.Errorf("poll volume diverged: measured %d predicted %d", meas.Polls, pred.Polls)
	}
}

// TestConformanceTemporalPushHalvesPollsWithoutLosingFidelity is the
// acceptance criterion of ISSUE 3: with push enabled against the same
// churning origin, origin poll count drops at least 2x versus pure
// polling on the same trace while the measured Δt violation rate is
// equal or lower.
func TestConformanceTemporalPushHalvesPollsWithoutLosingFidelity(t *testing.T) {
	tr := confTrace(t)
	obj := []replayObject{{path: "/news", tr: tr}}

	pull := replayTrace(t, obj, confHorizon, Config{
		DefaultDelta: confDelta,
		Bounds:       confBounds,
	}, false)
	push := replayTrace(t, obj, confHorizon, Config{
		DefaultDelta: confDelta,
		Bounds:       confBounds,
		PushStretch:  16,
	}, true)

	measPull := metrics.EvaluateTemporal(tr, pull.logs["/news"], confDelta, confHorizon)
	measPush := metrics.EvaluateTemporal(tr, push.logs["/news"], confDelta, confHorizon)
	t.Logf("pull: %v (origin polls %d)", measPull, pull.originPolls)
	t.Logf("push: %v (origin polls %d, stats %+v)", measPush, push.originPolls, push.pushStats)

	if push.originPolls*2 > pull.originPolls {
		t.Errorf("push did not halve origin polls: pull=%d push=%d", pull.originPolls, push.originPolls)
	}
	rPull := violationRate(measPull.Violations, measPull.Polls)
	rPush := violationRate(measPush.Violations, measPush.Polls)
	if rPush > rPull+1e-9 {
		t.Errorf("push raised the Δt violation rate: pull=%.4f push=%.4f", rPull, rPush)
	}
	if measPush.FidelityByTime+1e-9 < measPull.FidelityByTime {
		t.Errorf("push lowered time-weighted fidelity: pull=%.4f push=%.4f",
			measPull.FidelityByTime, measPush.FidelityByTime)
	}
	if push.pushStats.Polls == 0 {
		t.Error("push run never executed a pushed poll; the channel was inert")
	}
}

// TestConformanceMutualPairMatchesSimulator replays a grouped pair
// (CNN/FN + NYT/Reuters) and compares the measured mutual-consistency
// sync-violation rate against the simulator's prediction, with push off
// and on.
func TestConformanceMutualPairMatchesSimulator(t *testing.T) {
	const groupDelta = 2 * time.Minute
	trA := clipRound(tracegen.CNNFN(), confHorizon)
	trB := clipRound(tracegen.NYTReuters(), confHorizon)
	pred := predictMutual(t, trA, trB, confDelta, groupDelta, confBounds)

	objs := []replayObject{
		{path: "/a", tr: trA, tol: httpx.Tolerances{Group: "news", GroupDelta: groupDelta}},
		{path: "/b", tr: trB, tol: httpx.Tolerances{Group: "news", GroupDelta: groupDelta}},
	}
	cfg := Config{
		DefaultDelta: confDelta,
		Bounds:       confBounds,
		Mode:         core.TriggerAll,
	}
	for _, pushOn := range []bool{false, true} {
		name := "pull"
		run := cfg
		if pushOn {
			name = "push"
			run.PushStretch = 16
		}
		res := replayTrace(t, objs, confHorizon, run, pushOn)
		meas := metrics.EvaluateMutualTemporal(trA, trB, res.logs["/a"], res.logs["/b"], groupDelta, confHorizon)
		t.Logf("%s measured:  %v (origin polls %d)", name, meas, res.originPolls)
		t.Logf("%s predicted: %v", name, pred)

		rMeas := violationRate(meas.SyncViolations, meas.Polls)
		rPred := violationRate(pred.SyncViolations, pred.Polls)
		// The live stack may only ever do better than the predicted
		// pull-mode rate (push adds polls exactly where updates happen);
		// it must never be meaningfully worse.
		if rMeas > rPred+0.08 {
			t.Errorf("%s: mutual sync-violation rate %.4f exceeds predicted %.4f", name, rMeas, rPred)
		}
		if meas.Polls == 0 {
			t.Errorf("%s: no polls recorded", name)
		}
	}
}
