package webproxy

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"broadway/internal/core"
	"broadway/internal/httpx"
	"broadway/internal/push"
	"broadway/internal/webserver"
)

// This file tests the delta rung of the value ladder end to end at the
// proxy: a pushed delta frame reconstructs the new body against the
// resident base with zero origin traffic, any base or digest mismatch
// degrades down the ladder to exactly one confirmation poll, and the
// disk tier applies the same base-authority rule to demoted objects —
// the base digest is always the digest of the bytes actually in hand,
// never stale bookkeeping.

// docBody builds a multi-kilobyte line-structured body: large enough
// that MakeDelta finds matching blocks, and an appended revision yields
// a delta far smaller than the full body.
func docBody(rev, lines int) []byte {
	var b strings.Builder
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&b, "line %04d of the document, stable content that does not change\n", i)
	}
	fmt.Fprintf(&b, "revision trailer r%d\n", rev)
	return []byte(b.String())
}

// TestDeltaPushAppliedLive drives the full pipeline: origin Set → hub
// delta rung → proxy resolveDelta → install, with zero origin polls
// after admission. The first update travels as a full payload (the hub
// holds no base for the stream yet); once that delivery seeds the held
// set, the next update rides the delta rung.
func TestDeltaPushAppliedLive(t *testing.T) {
	s := newValuePushSetup(t, Config{})
	v1, v2, v3 := docBody(1, 120), docBody(2, 120), docBody(3, 120)
	s.origin.Set("/doc", v1, "text/plain")
	waitPushConnected(t, s.proxy)
	s.get(t, "/doc")
	admissionPolls := s.origin.Polls()

	// Full rung: the stream holds no base for /doc yet.
	s.origin.Set("/doc", v2, "text/plain")
	if !waitFor(t, 3*time.Second, func() bool {
		b, _ := s.proxy.CachedBody("/doc")
		return string(b) == string(v2)
	}) {
		t.Fatalf("full payload never installed: %+v", s.proxy.PushStats())
	}

	// Delta rung: the hub now holds digest(v2) for this stream.
	s.origin.Set("/doc", v3, "text/plain")
	if !waitFor(t, 3*time.Second, func() bool {
		b, _ := s.proxy.CachedBody("/doc")
		return string(b) == string(v3)
	}) {
		t.Fatalf("delta update never installed: %+v", s.proxy.PushStats())
	}

	st := s.proxy.PushStats()
	if st.DeltaApplied == 0 {
		t.Errorf("no delta applications recorded: %+v", st)
	}
	if st.DeltaBaseMisses != 0 || st.ValueFallbacks != 0 {
		t.Errorf("clean delta path degraded: %+v", st)
	}
	if got := s.origin.Polls(); got != admissionPolls {
		t.Errorf("origin saw %d polls beyond admission; the delta path must cost zero", got-admissionPolls)
	}
	if hs := s.origin.Stats().Hub; hs.DeltaFrames == 0 {
		t.Errorf("origin hub sent no delta frames: %+v", hs)
	}
}

// TestDeltaPushForgedBaseFallsToConfirmationPoll: a pure-delta event
// whose base digest matches nothing falls down the whole ladder — the
// hub cannot send the delta (held mismatch), has no full form, and
// strips the frame; the proxy degrades to exactly one confirmation
// poll and keeps serving the genuine body.
func TestDeltaPushForgedBaseFallsToConfirmationPoll(t *testing.T) {
	s := newValuePushSetup(t, Config{})
	v1, v2 := docBody(1, 80), docBody(2, 80)
	s.origin.Set("/page", v1, "text/plain")
	waitPushConnected(t, s.proxy)
	s.get(t, "/page")

	// Seed the stream's held set with a genuine full delivery.
	s.origin.Set("/page", v2, "text/plain")
	if !waitFor(t, 3*time.Second, func() bool {
		b, _ := s.proxy.CachedBody("/page")
		return string(b) == string(v2)
	}) {
		t.Fatalf("genuine update never installed: %+v", s.proxy.PushStats())
	}
	pollsBefore := s.origin.Polls()

	s.origin.InjectPushEvent(push.Event{
		Kind: push.KindUpdate, Key: "/page", ModTime: time.Now().Add(time.Hour),
		Body: []byte{0x01, 0x03, 'x', 'y', 'z'}, HasBody: true,
		Digest:     push.DigestOf([]byte("forged target")),
		BaseDigest: "00000000deadbeef", DeltaCodec: push.DeltaCodecBlock,
	})
	if !waitFor(t, 3*time.Second, func() bool { return s.proxy.PushStats().ValueFallbacks >= 1 }) {
		t.Fatalf("forged base never fell back: %+v", s.proxy.PushStats())
	}
	if !waitFor(t, 3*time.Second, func() bool { return s.origin.Polls() > pollsBefore }) {
		t.Fatal("confirmation poll never reached the origin")
	}
	if got := s.origin.Polls(); got != pollsBefore+1 {
		t.Errorf("forged base cost %d polls; the ladder owes exactly one", got-pollsBefore)
	}
	st := s.proxy.PushStats()
	if st.ValueFallbacks != 1 {
		t.Errorf("ValueFallbacks = %d, want exactly 1: %+v", st.ValueFallbacks, st)
	}
	if b, _ := s.proxy.CachedBody("/page"); string(b) != string(v2) {
		t.Errorf("cache degraded off the genuine body: %d bytes", len(b))
	}
}

// TestResolveDeltaBaseAuthority exercises the resident apply path's
// refusal cases directly: a forged base, a hostile delta stream on a
// genuine base, and a correct reconstruction that fails the terminal
// digest check must each count a base miss and install nothing, while
// the all-correct frame installs without any origin traffic.
func TestResolveDeltaBaseAuthority(t *testing.T) {
	s := newValuePushSetup(t, Config{})
	v1, v2 := docBody(1, 100), docBody(2, 100)
	s.origin.Set("/obj", v1, "text/plain")
	waitPushConnected(t, s.proxy)
	s.get(t, "/obj")
	pollsBefore := s.origin.Polls()

	e := s.proxy.lookup("/obj")
	if e == nil {
		t.Fatal("admitted object not resident")
	}
	delta, ok := push.MakeDelta(v1, v2)
	if !ok {
		t.Fatal("MakeDelta refused a trivially delta-able revision")
	}
	mk := func(body []byte, digest, base string) *push.Event {
		return &push.Event{
			Kind: push.KindUpdate, Key: "/obj", ModTime: time.Now().Add(time.Hour),
			Body: body, HasBody: true, Digest: digest,
			BaseDigest: base, DeltaCodec: push.DeltaCodecBlock,
		}
	}

	cases := []struct {
		name string
		ev   *push.Event
	}{
		{"forged base digest", mk(delta, push.DigestOf(v2), "00000000deadbeef")},
		{"hostile delta stream", mk([]byte{0xff, 0x01, 0x02}, push.DigestOf(v2), push.DigestOf(v1))},
		{"terminal digest mismatch", mk(delta, push.DigestOf(v1), push.DigestOf(v1))},
	}
	for i, tc := range cases {
		if s.proxy.applyPushedValue(e, tc.ev) {
			t.Fatalf("%s: applyPushedValue accepted the frame", tc.name)
		}
		if got := s.proxy.PushStats().DeltaBaseMisses; got != uint64(i+1) {
			t.Fatalf("%s: DeltaBaseMisses = %d, want %d", tc.name, got, i+1)
		}
		if b, _ := s.proxy.CachedBody("/obj"); string(b) != string(v1) {
			t.Fatalf("%s: refusal mutated the cached body", tc.name)
		}
	}

	if !s.proxy.applyPushedValue(e, mk(delta, push.DigestOf(v2), push.DigestOf(v1))) {
		t.Fatalf("correct delta refused: %+v", s.proxy.PushStats())
	}
	st := s.proxy.PushStats()
	if st.DeltaApplied != 1 || st.DeltaBaseMisses != 3 {
		t.Errorf("stats after apply: %+v", st)
	}
	if b, _ := s.proxy.CachedBody("/obj"); string(b) != string(v2) {
		t.Errorf("delta apply installed wrong body (%d bytes)", len(b))
	}
	if got := s.origin.Polls(); got != pollsBefore {
		t.Errorf("direct apply path cost %d origin polls", got-pollsBefore)
	}
}

// TestDiskDeltaBaseAuthority is the satellite invariant test: after a
// demotion, the delta base is the digest of the bytes read back from
// the disk record — never the in-memory digest the entry carried before
// eviction. A delta based on the pre-demotion body is refused once the
// record has moved on, and a delta based on the current disk body
// applies and persists.
func TestDiskDeltaBaseAuthority(t *testing.T) {
	var mu sync.Mutex
	lastMod := time.Now().UTC().Add(-time.Hour).Truncate(time.Second)
	body := func(path string) string {
		b := fmt.Sprintf("payload of %s ", path)
		for len(b) < 1024 {
			b += "stable filler text. "
		}
		return b
	}
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		w.Header().Set("Last-Modified", lastMod.Format(http.TimeFormat))
		fmt.Fprint(w, body(r.URL.Path))
	})
	px, _ := newHandlerProxy(t, handler, Config{
		MaxBytes:     3200,
		Shards:       2,
		Bounds:       noRefreshBounds,
		DefaultDelta: time.Hour,
		DiskDir:      t.TempDir(),
		PushValues:   true, // payload application without a live stream: disk applies are direct
	})

	// Overrun the byte budget so CLOCK demotes most of the set to disk.
	const n = 8
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("/d/%d", i)
		if code, got, _ := proxyGet(t, px, k); code != 200 || got != body(k) {
			t.Fatalf("admit %s: %d", k, code)
		}
	}
	if px.DiskStats().Demotions == 0 {
		t.Fatal("no demotions: the byte budget did not displace anything")
	}
	px.FlushDisk()
	var key string
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("/d/%d", i)
		if px.lookup(k) == nil {
			if _, ok := px.disk.Meta(k); ok {
				key = k
				break
			}
		}
	}
	if key == "" {
		t.Fatal("no demoted key with a disk record")
	}
	_, v1, ok := px.disk.Get(key)
	if !ok {
		t.Fatalf("disk record for %s unreadable", key)
	}
	v2 := append(append([]byte{}, v1...), []byte("appended revision two, new trailing material\n")...)
	v3 := append(append([]byte{}, v2...), []byte("appended revision three, yet more material\n")...)
	t0 := time.Now().UTC().Truncate(time.Second)

	// Full update lands on the disk record.
	full := push.Event{
		Kind: push.KindUpdate, Key: key, ModTime: t0.Add(time.Hour),
		Body: v2, HasBody: true, Digest: push.DigestOf(v2),
	}
	if !px.applyPushedToDisk(full) {
		t.Fatal("full update refused by the disk tier")
	}
	px.FlushDisk()
	if _, got, ok := px.disk.Get(key); !ok || string(got) != string(v2) {
		t.Fatalf("disk body after full apply: ok=%v len=%d", ok, len(got))
	}

	// A delta based on the PRE-update body must be refused: the disk
	// bytes are the base authority, and they moved on.
	d13, ok := push.MakeDelta(v1, v3)
	if !ok {
		t.Fatal("MakeDelta(v1, v3) refused")
	}
	stale := push.Event{
		Kind: push.KindUpdate, Key: key, ModTime: t0.Add(2 * time.Hour),
		Body: d13, HasBody: true, Digest: push.DigestOf(v3),
		BaseDigest: push.DigestOf(v1), DeltaCodec: push.DeltaCodecBlock,
	}
	if px.applyPushedToDisk(stale) {
		t.Fatal("stale-base delta accepted against a moved-on disk record")
	}
	if got := px.PushStats().DeltaBaseMisses; got != 1 {
		t.Fatalf("DeltaBaseMisses = %d after stale-base refusal", got)
	}
	px.FlushDisk()
	if _, got, _ := px.disk.Get(key); string(got) != string(v2) {
		t.Fatal("stale-base refusal mutated the disk body")
	}

	// A delta based on the CURRENT disk bytes applies and persists.
	d23, ok := push.MakeDelta(v2, v3)
	if !ok {
		t.Fatal("MakeDelta(v2, v3) refused")
	}
	good := push.Event{
		Kind: push.KindUpdate, Key: key, ModTime: t0.Add(2 * time.Hour),
		Body: d23, HasBody: true, Digest: push.DigestOf(v3),
		BaseDigest: push.DigestOf(v2), DeltaCodec: push.DeltaCodecBlock,
	}
	if !px.applyPushedToDisk(good) {
		t.Fatal("current-base delta refused by the disk tier")
	}
	px.FlushDisk()
	if _, got, ok := px.disk.Get(key); !ok || string(got) != string(v3) {
		t.Fatalf("disk body after delta apply: ok=%v len=%d", ok, len(got))
	}
	st := px.PushStats()
	if st.DeltaApplied != 1 || st.DiskApplied != 2 {
		t.Errorf("stats after disk applies: %+v", st)
	}

	// Replaying an older frame is a recognized duplicate, not a rewind.
	if !px.applyPushedToDisk(full) {
		t.Fatal("duplicate replay not recognized as handled")
	}
	px.FlushDisk()
	if _, got, _ := px.disk.Get(key); string(got) != string(v3) {
		t.Fatal("duplicate replay rewound the disk body")
	}
}

// TestOverrideToleranceLive drives the runtime Δ/Δv override against a
// live proxy: the override echoes the entry's post-override tolerances,
// refuses non-resident keys, counts applications, and journals the new
// bounds through the disk tier so a restart would rehydrate them.
func TestOverrideToleranceLive(t *testing.T) {
	s := newLiveSetup(t, []webserver.Option{webserver.WithHistoryExtension(true)}, Config{
		Bounds:       core.TTRBounds{Min: time.Minute, Max: time.Hour},
		DefaultDelta: time.Minute,
		DiskDir:      t.TempDir(),
	})
	s.origin.Set("/page", docBody(1, 40), "text/plain")
	s.get(t, "/page")

	res, ok := s.proxy.OverrideTolerance("/page", 30*time.Second, 0)
	if !ok {
		t.Fatal("override refused for a resident key")
	}
	if res.Key != "/page" || res.Delta != 30*time.Second || res.ValueDelta != 0 {
		t.Fatalf("override result = %+v", res)
	}
	if got := s.proxy.ToleranceOverrides(); got != 1 {
		t.Fatalf("ToleranceOverrides = %d", got)
	}
	if cs := s.proxy.CacheStats(); cs.ToleranceOverrides != 1 {
		t.Fatalf("CacheStats.ToleranceOverrides = %d", cs.ToleranceOverrides)
	}

	if _, ok := s.proxy.OverrideTolerance("/nope", time.Second, 0); ok {
		t.Fatal("override accepted a non-resident key")
	}
	if got := s.proxy.ToleranceOverrides(); got != 1 {
		t.Fatalf("failed override counted: %d", got)
	}

	// The override journals through the disk tier: the record carries
	// the new Δ for rehydration.
	s.proxy.FlushDisk()
	rec, ok := s.proxy.disk.Meta("/page")
	if !ok {
		t.Fatal("no disk record journaled for the overridden entry")
	}
	if rec.Delta != 30*time.Second {
		t.Fatalf("journaled Delta = %v, want 30s", rec.Delta)
	}

	// Δv on a value object: the override echoes the new value tolerance.
	s.origin.Set("/quote", []byte("100.00\n"), "text/plain")
	s.origin.SetTolerances("/quote", httpx.Tolerances{ValueDelta: 0.25})
	s.get(t, "/quote")
	res2, ok := s.proxy.OverrideTolerance("/quote", 0, 0.5)
	if !ok {
		t.Fatal("dv override refused for a resident value object")
	}
	if res2.ValueDelta != 0.5 {
		t.Fatalf("dv override result = %+v", res2)
	}
	if got := s.proxy.ToleranceOverrides(); got != 2 {
		t.Fatalf("ToleranceOverrides = %d", got)
	}
}
