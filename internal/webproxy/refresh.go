package webproxy

import (
	"sync"
	"time"

	"broadway/internal/core"
	"broadway/internal/push"
)

// This file is the refresh engine: a dispatcher goroutine that pops due
// entries off the min-heap schedule and a bounded pool of poll workers
// that perform the origin fetches. Work is routed to workers by the
// FNV hash of the entry's serialization key (its consistency group when
// it has one, else its cache key), so polls of one object — and of all
// objects sharing a group — always execute on the same worker in order.
// That affinity is what keeps the per-group MutualTimeController and the
// shared state of partitioned M_v policy pairs single-threaded while
// unrelated objects refresh fully in parallel.

// pollKind distinguishes why a poll was requested. Regular polls come
// off the TTR schedule and feed the policy; triggered polls are demanded
// by a mutual-consistency controller; pushed polls are demanded by the
// origin's invalidation channel. Triggered and pushed polls leave the
// regular schedule and the policy's learned TTR untouched, but a pushed
// poll that confirms an update runs the §3.2 group triggering exactly as
// a regular poll would — the channel must not weaken mutual consistency.
type pollKind uint8

const (
	pollRegular pollKind = iota
	pollTriggered
	pollPushed
)

// job is one unit of poll work routed to a worker.
type job struct {
	e    *entry
	kind pollKind
}

// worker is one poll worker with an unbounded mailbox. The mailbox must
// be unbounded: a worker enqueues triggered polls for its own group
// (i.e. to itself) mid-poll, which would deadlock on a bounded channel.
type worker struct {
	mu    sync.Mutex
	queue []job
	head  int // index of the next job; consumed prefix is compacted lazily
	wake  chan struct{}
}

func (w *worker) enqueue(j job) {
	w.mu.Lock()
	w.queue = append(w.queue, j)
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

func (w *worker) dequeue() (job, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.head == len(w.queue) {
		if w.head != 0 {
			w.queue = w.queue[:0]
			w.head = 0
		}
		return job{}, false
	}
	j := w.queue[w.head]
	w.queue[w.head] = job{}
	w.head++
	// Compact once the consumed prefix dominates, keeping pops O(1)
	// amortized while bounding memory held by drained bursts.
	if w.head > 64 && w.head*2 >= len(w.queue) {
		n := copy(w.queue, w.queue[w.head:])
		w.queue = w.queue[:n]
		w.head = 0
	}
	return j, true
}

// workerFor routes e to its affinity worker.
func (p *Proxy) workerFor(e *entry) *worker {
	k := e.group
	if k == "" {
		k = e.key
	}
	return p.workers[fnv32(k)%uint32(len(p.workers))]
}

// workerLoop drains one worker's mailbox until the proxy closes.
func (p *Proxy) workerLoop(w *worker) {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		default:
		}
		if j, ok := w.dequeue(); ok {
			p.pollEntry(j.e, j.kind)
			p.pending.Add(-1)
			continue
		}
		select {
		case <-p.done:
			return
		case <-w.wake:
		}
	}
}

// dispatchLoop pops due entries off the schedule and hands them to their
// affinity workers. It sleeps until the heap's earliest instant, waking
// early when the schedule changes.
func (p *Proxy) dispatchLoop() {
	defer p.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		now := p.cfg.Clock()
		var due []*entry
		p.schedMu.Lock()
		for {
			it := p.schedule.PopDue(now)
			if it == nil {
				break
			}
			e := it.Payload.(*entry)
			e.item = nil
			if e.evicted.Load() {
				continue // unwound between Remove and this pop; drop it
			}
			// Count the job before the heap stops covering it, still
			// under schedMu: quiescence probes (InFlightPolls +
			// NextRefreshAt) must never observe the gap between pop and
			// enqueue.
			p.pending.Add(1)
			due = append(due, e)
		}
		wait := time.Hour
		if it := p.schedule.Peek(); it != nil {
			wait = it.At.Sub(now)
			if wait < 0 {
				wait = 0
			}
		}
		p.schedMu.Unlock()
		for _, e := range due {
			p.workerFor(e).enqueue(job{e: e, kind: pollRegular})
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-p.done:
			return
		case <-p.wake:
		case <-timer.C:
		}
	}
}

// kick wakes the dispatcher after schedule changes.
func (p *Proxy) kick() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// reschedule sets e's next regular poll instant (unstretched: the
// instant doubles as its own paper-mode baseline). An evicted entry is
// never (re)scheduled: the eviction token is set before unschedule takes
// schedMu, so checking it under schedMu closes the race with a poll
// finishing while its entry is being evicted — whichever side runs
// second leaves the entry off the heap.
func (p *Proxy) reschedule(e *entry, at time.Time) {
	p.schedMu.Lock()
	if e.evicted.Load() {
		p.schedMu.Unlock()
		return
	}
	e.nextAt = at
	e.baseNextAt = at
	if e.item != nil {
		p.schedule.Reschedule(e.item, at)
	} else {
		e.item = p.schedule.Push(at, e)
	}
	p.schedMu.Unlock()
	p.kick()
}

// rescheduleHybrid sets e's next regular poll ttr from now, stretched
// while the push channel is healthy; the unstretched instant is
// remembered so the fallback sweep can restore it if the channel dies
// before the poll runs. The stretch decision is made under schedMu —
// the same lock the sweep holds for its entire pass — so a poll racing
// a disconnect either reschedules before the sweep (and is swept back)
// or observes the channel already unhealthy; a stretched instant can
// never slip onto the heap after the sweep has passed it by.
func (p *Proxy) rescheduleHybrid(e *entry, now time.Time, ttr time.Duration) {
	p.schedMu.Lock()
	if e.evicted.Load() {
		p.schedMu.Unlock()
		return
	}
	base := now.Add(ttr)
	at := now.Add(p.stretchTTR(e, ttr))
	e.nextAt = at
	e.baseNextAt = base
	if e.item != nil {
		p.schedule.Reschedule(e.item, at)
	} else {
		e.item = p.schedule.Push(at, e)
	}
	p.schedMu.Unlock()
	p.kick()
}

// unschedule removes e's pending poll, if any, from the refresh heap.
func (p *Proxy) unschedule(e *entry) {
	p.schedMu.Lock()
	if e.item != nil {
		p.schedule.Remove(e.item)
		e.item = nil
	}
	e.nextAt = time.Time{}
	e.baseNextAt = time.Time{}
	p.schedMu.Unlock()
}

// leaveGroup detaches an evicted entry from its consistency group: it is
// dropped from the member list (no more triggered polls target it) and
// the controller forgets its learned update rate. Evicting half of a
// partitioned M_v pair widows the survivor, which is unpaired and
// returned to an individual AdaptiveTTR policy over its own Δv — its
// tightened tolerance share would otherwise poll forever for a partner
// that no longer exists — leaving it free to re-pair with the next
// value member admitted to the group.
func (p *Proxy) leaveGroup(e *entry) {
	if e.group == "" {
		return
	}
	// groupMu is held for the whole removal (lock order groupMu →
	// gs.mu, matching groupStateOrCreate → joinGroup) so that a group
	// emptied here can be retired from the map atomically with marking
	// it dead — a concurrent joinGroup then either sees the dead state
	// and retries, or the removal sees its member and keeps the group.
	p.groupMu.Lock()
	defer p.groupMu.Unlock()
	gs := p.groups[e.group]
	if gs == nil {
		return
	}
	gs.mu.Lock()
	defer gs.mu.Unlock()
	for i, m := range gs.members {
		if m == e {
			gs.members = append(gs.members[:i], gs.members[i+1:]...)
			break
		}
	}
	if other := e.partner; other != nil {
		e.partner = nil
		if other.partner == e {
			other.partner = nil
			other.mu.Lock()
			other.paired = false
			other.policy = core.NewAdaptiveTTR(core.AdaptiveTTRConfig{
				Delta:  other.valueDelta,
				Bounds: p.cfg.Bounds,
			})
			other.mu.Unlock()
		}
	}
	gs.ctrl.Forget(core.ObjectID(e.key))
	if len(gs.members) == 0 {
		// Last member gone: retire the group so churn over distinct
		// group names cannot leak controllers.
		gs.dead = true
		delete(p.groups, e.group)
	}
}

// scheduledNextAt reads e's next regular poll instant.
func (p *Proxy) scheduledNextAt(e *entry) time.Time {
	p.schedMu.Lock()
	defer p.schedMu.Unlock()
	return e.nextAt
}

// pollEntry performs one refresh of e. Triggered and pushed polls leave
// the regular schedule untouched, mirroring the simulator's proxy. A
// pushed job first tries to install the event's payload directly (the
// value-carrying fast path) and only reaches the origin when that is
// impossible.
func (p *Proxy) pollEntry(e *entry, kind pollKind) {
	triggered := kind != pollRegular
	if kind == pollPushed {
		// Clear the coalescing flag before consuming the event: an event
		// arriving mid-job must enqueue a fresh job (this one may
		// already have read an older version).
		e.pushQueued.Store(false)
		if p.cfg.PushValues {
			if pending := e.pendingPush.Swap(nil); pending != nil {
				if p.applyPushedValue(e, pending) {
					return // installed (or a recognized duplicate): no origin request
				}
				if e.evicted.Load() && p.applyPushedToDisk(*pending) {
					// Demoted mid-flight: the entry left the store between
					// the event and this job, but its disk record survives
					// — landing the payload there keeps the demoted copy
					// fresh for the next promotion.
					return
				}
				p.pushValueFallback.Add(1)
			}
		}
	}
	// An entry evicted after being popped off the schedule (or while
	// queued on its worker) must not poll the origin: eviction promises
	// the object never causes another upstream request.
	if e.evicted.Load() {
		return
	}
	e.mu.RLock()
	since := e.lastMod
	hasSince := e.hasLastMod
	prevValidated := e.validatedAt
	e.mu.RUnlock()
	if !hasSince {
		since = prevValidated
	}

	resp, err := p.fetch(e.key, since)
	now := p.cfg.Clock()
	if err != nil {
		p.deferRetry(e, now, kind)
		return
	}
	e.polls.Add(1)
	switch kind {
	case pollTriggered:
		e.triggered.Add(1)
	case pollPushed:
		e.pushed.Add(1)
	}

	outcome := core.PollOutcome{
		Now:      p.toSim(now),
		Prev:     p.toSim(prevValidated),
		Modified: !resp.notModified,
	}
	if resp.hasLastMod {
		outcome.LastModified = p.toSim(resp.lastMod)
		outcome.HasLastModified = true
	}
	for _, h := range resp.history {
		outcome.History = append(outcome.History, p.toSim(h))
	}

	e.mu.Lock()
	e.failures = 0
	e.validatedAt = now
	// A 304 carries Cache-Control too (the origin writes the §5.1
	// tolerance directives on every response), and HTTP semantics say a
	// revalidation updates stored headers. Refreshing it here — not only
	// on a 200 — matters doubly under value-carrying push: installs
	// advance lastMod without touching headers, so the periodic
	// stretched poll's 304 is the only channel left for a tolerance
	// change to reach this proxy and its children.
	if cc := resp.header.Get("Cache-Control"); cc != "" {
		e.cacheControl = cc
	}
	if e.isValue {
		outcome.HasValue = true
		outcome.PrevValue = e.value
		outcome.Value = e.value
	}
	var prevBody []byte
	var prevDigest string
	if !resp.notModified {
		if p.cfg.PushValues {
			// The outgoing body is the delta base downstream subscribers
			// hold; snapshot it (and its digest) before the swap so the
			// confirmation relay can publish a re-based delta form.
			prevBody, prevDigest = e.body, e.bodyDigest
			e.bodyDigest = push.DigestOf(resp.body)
		}
		e.body = resp.body
		if resp.contentType != "" {
			e.contentType = resp.contentType
		}
		if resp.hasLastMod {
			e.lastMod = resp.lastMod
			e.hasLastMod = true
		}
		if e.isValue {
			if v, ok := parseValueBody(resp.body); ok {
				e.value = v
				outcome.Value = v
			}
		}
	}
	var ttr time.Duration
	if !triggered {
		ttr = e.policy.NextTTR(outcome)
	}
	paired := e.paired
	e.mu.Unlock()

	rr := refreshResult{kind: kind, now: now, ttr: ttr, outcome: outcome, paired: paired}
	if !resp.notModified {
		rr.resized = true
		rr.newSize = entrySize(e.key, resp.body)
		// Confirmation relay: the cached copy is fresh as of now, so
		// downstream subscribers can be told (published after the body
		// swap above — a child that polls on this event must find the
		// new version, not the stale one the pass-through event raced).
		mod := now
		if resp.hasLastMod {
			mod = resp.lastMod
		}
		rr.relay = func() { p.relayConfirmedUpdate(e, mod, prevBody, prevDigest) }
	}
	p.finishRefresh(e, rr)
}

// refreshResult carries what finishRefresh needs from the two paths
// that install a fresh validation of an object: an origin poll
// (pollEntry) and a direct pushed-value install (applyPushedValue).
type refreshResult struct {
	kind    pollKind
	now     time.Time
	outcome core.PollOutcome
	paired  bool
	// ttr is the policy's next regular interval; consumed only for
	// kind == pollRegular (triggered and pushed refreshes leave the
	// regular schedule untouched).
	ttr time.Duration
	// resized marks a body replacement: newSize re-charges the byte
	// ledger and the budget is re-enforced.
	resized bool
	newSize int64
	// relay, when non-nil, publishes the update downstream. It runs
	// after the ledger update — and therefore after the body swap the
	// caller performed — so a child that polls on the relayed event
	// finds the fresh copy, never the stale one.
	relay func()
	// applied marks a pushed payload installed with no origin request.
	applied bool
}

// finishRefresh is the post-refresh bookkeeping shared by every path
// that installs a fresh validation of e — scheduled, triggered, and
// pushed polls, and direct pushed-value installs. In order: byte-ledger
// re-charge with budget re-enforcement, downstream relay publication,
// the eviction-token-guarded controller observation, rescheduling,
// §3.2 group triggering, and the observer emission. It reports whether
// the entry survived (an eviction mid-refresh stops everything past the
// controller guard: the object no longer owns a refresh slot).
func (p *Proxy) finishRefresh(e *entry, rr refreshResult) bool {
	if rr.resized {
		// The refresh replaced the body: re-charge the byte ledger.
		// Refreshes of one entry serialize on its affinity worker, so
		// the size transition is single-threaded; resize itself is a
		// no-op if the entry was evicted meanwhile. Growth can push the
		// ledger past MaxBytes with no admission in sight, so the
		// budget is re-enforced here too (the refreshed object itself
		// is protected — it is demonstrably live).
		p.store.resize(e, rr.newSize)
		if p.cfg.Eviction == EvictClock {
			if p.cfg.MaxBytes >= 0 && e.size.Load() > p.cfg.MaxBytes {
				// The body grew past the whole budget: an object this
				// size would be refused at admission, so it cannot stay
				// resident either. Removing it must precede the shrink
				// loop — with the oversized entry protected, shrink
				// would drain every other resident and still be over
				// budget. A later request re-fetches and is served
				// uncached (BYPASS) while it stays oversized.
				if p.store.removeEntry(e) {
					p.unwind([]*entry{e})
				}
			}
			p.demote(p.store.shrink(p.cfg.MaxObjects, p.cfg.MaxBytes, p.store.shardIndex(e.key), e))
		}
	}
	if rr.relay != nil {
		rr.relay()
	}

	gs := p.groupState(e.group)
	if gs != nil {
		gs.mu.Lock()
		// Re-check the eviction token under gs.mu: if the entry was
		// evicted while this refresh was in flight, leaveGroup has run
		// (or will run) Forget for it, and feeding the outcome now
		// would resurrect controller state for a non-resident object.
		// The token is set before leaveGroup takes gs.mu, so whichever
		// side acquires gs.mu second leaves the controller clean.
		if !e.evicted.Load() {
			gs.ctrl.ObserveOutcome(core.ObjectID(e.key), rr.outcome)
		}
		gs.mu.Unlock()
	}
	if e.evicted.Load() {
		return false // evicted mid-refresh: no reschedule, no triggering
	}

	// The refresh confirmed (or replaced) the cached copy against the
	// origin: a rehydrated entry sheds its suspect mark, and the
	// validated state flows to the disk tier (async write-behind; no-op
	// when persistence is disabled).
	if e.suspect.Load() {
		e.suspect.Store(false)
	}
	p.persistEntry(e)

	if rr.kind == pollRegular {
		// While the push channel is healthy the regular poll is only a
		// safety net; stretch it toward the upper bound and remember the
		// paper-mode instant for the fallback sweep.
		p.rescheduleHybrid(e, rr.now, rr.ttr)
	}
	// Temporal group triggering; partitioned M_v pairs maintain their
	// mutual guarantee through the tolerance split instead. Pushed
	// refreshes trigger too: an update learned via the channel imposes
	// the same mutual obligation as one learned by polling.
	if rr.kind != pollTriggered && rr.outcome.Modified && gs != nil && !rr.paired {
		p.triggerGroup(e, gs, rr.now)
	}
	if obs := p.cfg.PollObserver; obs != nil {
		e.mu.RLock()
		value, hasValue := e.value, e.isValue
		e.mu.RUnlock()
		obs(PollObservation{
			Key:       e.key,
			At:        rr.now,
			Modified:  rr.outcome.Modified,
			Triggered: rr.kind == pollTriggered,
			Pushed:    rr.kind == pollPushed,
			Applied:   rr.applied,
			Value:     value,
			HasValue:  hasValue,
		})
	}
	return true
}

// deferRetry handles an upstream failure with capped exponential backoff
// starting from the policy's initial TTR. The policy itself is never fed
// a failed poll, so its learned TTR state survives origin flaps intact.
func (p *Proxy) deferRetry(e *entry, now time.Time, kind pollKind) {
	e.mu.Lock()
	e.failures++
	n := e.failures
	base := e.policy.InitialTTR()
	e.mu.Unlock()
	retryAt := now.Add(backoffDelay(base, n, p.maxBackoff()))
	if kind != pollRegular {
		// A failed triggered or pushed poll must still be retried
		// promptly — the group's mutual guarantee (or the pushed
		// update's freshness) is on the line — so pull the regular poll
		// forward to the retry instant. Never push an even sooner poll
		// later; a nil item means a regular poll is already queued on
		// this worker, which is itself the prompt retry.
		p.schedMu.Lock()
		pull := e.item != nil && retryAt.Before(e.nextAt)
		if pull {
			e.nextAt = retryAt
			if retryAt.Before(e.baseNextAt) {
				e.baseNextAt = retryAt
			}
			p.schedule.Reschedule(e.item, retryAt)
		}
		p.schedMu.Unlock()
		if pull {
			p.kick()
		}
		return
	}
	p.reschedule(e, retryAt)
}

// backoffDelay returns base doubled per consecutive failure beyond the
// first, capped at max.
func backoffDelay(base time.Duration, failures int, max time.Duration) time.Duration {
	if base <= 0 {
		base = time.Second
	}
	d := base
	for i := 1; i < failures && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// maxBackoff is the retry-delay ceiling.
func (p *Proxy) maxBackoff() time.Duration {
	if p.cfg.Bounds.Max > 0 {
		return p.cfg.Bounds.Max
	}
	return core.DefaultTTRMax
}

// triggerGroup enqueues immediate extra polls of e's group members where
// the controller demands it.
func (p *Proxy) triggerGroup(e *entry, gs *groupState, now time.Time) {
	// gs.mu is held across the scan (nesting gs.mu → entry.mu matches
	// joinGroup and is taken nowhere in reverse). The member snapshot
	// runs first so the single schedMu section that follows — one
	// acquisition for the whole scan, not one per member — never holds
	// an entry lock.
	type candidate struct {
		other       *entry
		validatedAt time.Time
	}
	gs.mu.Lock()
	cands := make([]candidate, 0, len(gs.members))
	for _, other := range gs.members {
		if other == e {
			continue
		}
		other.mu.RLock()
		validatedAt := other.validatedAt
		other.mu.RUnlock()
		cands = append(cands, candidate{other, validatedAt})
	}
	var toTrigger []*entry
	p.schedMu.Lock()
	for _, c := range cands {
		if gs.ctrl.ShouldTrigger(core.ObjectID(e.key), core.ObjectID(c.other.key),
			p.toSim(now), p.toSim(c.validatedAt), p.toSim(c.other.nextAt)) {
			toTrigger = append(toTrigger, c.other)
		}
	}
	p.schedMu.Unlock()
	gs.mu.Unlock()
	for _, other := range toTrigger {
		// Same group ⇒ same affinity worker ⇒ the triggered poll runs
		// strictly after the current one; enqueueing is non-blocking.
		p.pending.Add(1)
		p.workerFor(other).enqueue(job{e: other, kind: pollTriggered})
	}
}

// groupState looks up the state for a group name ("" returns nil).
func (p *Proxy) groupState(group string) *groupState {
	if group == "" {
		return nil
	}
	p.groupMu.RLock()
	gs := p.groups[group]
	p.groupMu.RUnlock()
	return gs
}

// groupStateOrCreate returns the state for group, creating it with the
// given δ on first use.
func (p *Proxy) groupStateOrCreate(group string, groupDelta time.Duration) *groupState {
	p.groupMu.Lock()
	defer p.groupMu.Unlock()
	gs, ok := p.groups[group]
	if !ok {
		gs = &groupState{ctrl: core.NewMutualTimeController(core.MutualTimeConfig{
			Delta: groupDelta,
			Mode:  p.cfg.Mode,
		})}
		p.groups[group] = gs
	}
	return gs
}
