package webproxy

import (
	"sync"
	"time"

	"broadway/internal/core"
)

// This file is the refresh engine: a dispatcher goroutine that pops due
// entries off the min-heap schedule and a bounded pool of poll workers
// that perform the origin fetches. Work is routed to workers by the
// FNV hash of the entry's serialization key (its consistency group when
// it has one, else its cache key), so polls of one object — and of all
// objects sharing a group — always execute on the same worker in order.
// That affinity is what keeps the per-group MutualTimeController and the
// shared state of partitioned M_v policy pairs single-threaded while
// unrelated objects refresh fully in parallel.

// job is one unit of poll work routed to a worker.
type job struct {
	e         *entry
	triggered bool
}

// worker is one poll worker with an unbounded mailbox. The mailbox must
// be unbounded: a worker enqueues triggered polls for its own group
// (i.e. to itself) mid-poll, which would deadlock on a bounded channel.
type worker struct {
	mu    sync.Mutex
	queue []job
	head  int // index of the next job; consumed prefix is compacted lazily
	wake  chan struct{}
}

func (w *worker) enqueue(j job) {
	w.mu.Lock()
	w.queue = append(w.queue, j)
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

func (w *worker) dequeue() (job, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.head == len(w.queue) {
		if w.head != 0 {
			w.queue = w.queue[:0]
			w.head = 0
		}
		return job{}, false
	}
	j := w.queue[w.head]
	w.queue[w.head] = job{}
	w.head++
	// Compact once the consumed prefix dominates, keeping pops O(1)
	// amortized while bounding memory held by drained bursts.
	if w.head > 64 && w.head*2 >= len(w.queue) {
		n := copy(w.queue, w.queue[w.head:])
		w.queue = w.queue[:n]
		w.head = 0
	}
	return j, true
}

// workerFor routes e to its affinity worker.
func (p *Proxy) workerFor(e *entry) *worker {
	k := e.group
	if k == "" {
		k = e.key
	}
	return p.workers[fnv32(k)%uint32(len(p.workers))]
}

// workerLoop drains one worker's mailbox until the proxy closes.
func (p *Proxy) workerLoop(w *worker) {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		default:
		}
		if j, ok := w.dequeue(); ok {
			p.pollEntry(j.e, j.triggered)
			continue
		}
		select {
		case <-p.done:
			return
		case <-w.wake:
		}
	}
}

// dispatchLoop pops due entries off the schedule and hands them to their
// affinity workers. It sleeps until the heap's earliest instant, waking
// early when the schedule changes.
func (p *Proxy) dispatchLoop() {
	defer p.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		now := p.cfg.Clock()
		var due []*entry
		p.schedMu.Lock()
		for {
			it := p.schedule.PopDue(now)
			if it == nil {
				break
			}
			e := it.Payload.(*entry)
			e.item = nil
			due = append(due, e)
		}
		wait := time.Hour
		if it := p.schedule.Peek(); it != nil {
			wait = it.At.Sub(now)
			if wait < 0 {
				wait = 0
			}
		}
		p.schedMu.Unlock()
		for _, e := range due {
			p.workerFor(e).enqueue(job{e: e})
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-p.done:
			return
		case <-p.wake:
		case <-timer.C:
		}
	}
}

// kick wakes the dispatcher after schedule changes.
func (p *Proxy) kick() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// reschedule sets e's next regular poll instant.
func (p *Proxy) reschedule(e *entry, at time.Time) {
	p.schedMu.Lock()
	e.nextAt = at
	if e.item != nil {
		p.schedule.Reschedule(e.item, at)
	} else {
		e.item = p.schedule.Push(at, e)
	}
	p.schedMu.Unlock()
	p.kick()
}

// scheduledNextAt reads e's next regular poll instant.
func (p *Proxy) scheduledNextAt(e *entry) time.Time {
	p.schedMu.Lock()
	defer p.schedMu.Unlock()
	return e.nextAt
}

// pollEntry performs one refresh of e. Triggered polls leave the regular
// schedule untouched, mirroring the simulator's proxy.
func (p *Proxy) pollEntry(e *entry, triggered bool) {
	e.mu.RLock()
	since := e.lastMod
	hasSince := e.hasLastMod
	prevValidated := e.validatedAt
	e.mu.RUnlock()
	if !hasSince {
		since = prevValidated
	}

	resp, err := p.fetch(e.key, since)
	now := p.cfg.Clock()
	if err != nil {
		p.deferRetry(e, now, triggered)
		return
	}

	outcome := core.PollOutcome{
		Now:      p.toSim(now),
		Prev:     p.toSim(prevValidated),
		Modified: !resp.notModified,
	}
	if resp.hasLastMod {
		outcome.LastModified = p.toSim(resp.lastMod)
		outcome.HasLastModified = true
	}
	for _, h := range resp.history {
		outcome.History = append(outcome.History, p.toSim(h))
	}

	e.mu.Lock()
	e.failures = 0
	e.validatedAt = now
	if e.isValue {
		outcome.HasValue = true
		outcome.PrevValue = e.value
		outcome.Value = e.value
	}
	if !resp.notModified {
		e.body = resp.body
		if resp.contentType != "" {
			e.contentType = resp.contentType
		}
		if resp.hasLastMod {
			e.lastMod = resp.lastMod
			e.hasLastMod = true
		}
		if e.isValue {
			if v, ok := parseValueBody(resp.body); ok {
				e.value = v
				outcome.Value = v
			}
		}
	}
	var ttr time.Duration
	if !triggered {
		ttr = e.policy.NextTTR(outcome)
	}
	paired := e.paired
	e.mu.Unlock()

	e.polls.Add(1)
	if triggered {
		e.triggered.Add(1)
	}

	gs := p.groupState(e.group)
	if gs != nil {
		gs.mu.Lock()
		gs.ctrl.ObserveOutcome(core.ObjectID(e.key), outcome)
		gs.mu.Unlock()
	}

	if !triggered {
		p.reschedule(e, now.Add(ttr))
	}
	// Temporal group triggering; partitioned M_v pairs maintain their
	// mutual guarantee through the tolerance split instead.
	if !triggered && outcome.Modified && gs != nil && !paired {
		p.triggerGroup(e, gs, now)
	}
}

// deferRetry handles an upstream failure with capped exponential backoff
// starting from the policy's initial TTR. The policy itself is never fed
// a failed poll, so its learned TTR state survives origin flaps intact.
func (p *Proxy) deferRetry(e *entry, now time.Time, triggered bool) {
	e.mu.Lock()
	e.failures++
	n := e.failures
	base := e.policy.InitialTTR()
	e.mu.Unlock()
	retryAt := now.Add(backoffDelay(base, n, p.maxBackoff()))
	if triggered {
		// A failed triggered poll must still be retried promptly — the
		// group's mutual guarantee is on the line — so pull the regular
		// poll forward to the retry instant. Never push an even sooner
		// poll later; a nil item means a regular poll is already queued
		// on this worker, which is itself the prompt retry.
		p.schedMu.Lock()
		pull := e.item != nil && retryAt.Before(e.nextAt)
		if pull {
			e.nextAt = retryAt
			p.schedule.Reschedule(e.item, retryAt)
		}
		p.schedMu.Unlock()
		if pull {
			p.kick()
		}
		return
	}
	p.reschedule(e, retryAt)
}

// backoffDelay returns base doubled per consecutive failure beyond the
// first, capped at max.
func backoffDelay(base time.Duration, failures int, max time.Duration) time.Duration {
	if base <= 0 {
		base = time.Second
	}
	d := base
	for i := 1; i < failures && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// maxBackoff is the retry-delay ceiling.
func (p *Proxy) maxBackoff() time.Duration {
	if p.cfg.Bounds.Max > 0 {
		return p.cfg.Bounds.Max
	}
	return core.DefaultTTRMax
}

// triggerGroup enqueues immediate extra polls of e's group members where
// the controller demands it.
func (p *Proxy) triggerGroup(e *entry, gs *groupState, now time.Time) {
	// gs.mu is held across the scan (nesting gs.mu → entry.mu matches
	// joinGroup and is taken nowhere in reverse). The member snapshot
	// runs first so the single schedMu section that follows — one
	// acquisition for the whole scan, not one per member — never holds
	// an entry lock.
	type candidate struct {
		other       *entry
		validatedAt time.Time
	}
	gs.mu.Lock()
	cands := make([]candidate, 0, len(gs.members))
	for _, other := range gs.members {
		if other == e {
			continue
		}
		other.mu.RLock()
		validatedAt := other.validatedAt
		other.mu.RUnlock()
		cands = append(cands, candidate{other, validatedAt})
	}
	var toTrigger []*entry
	p.schedMu.Lock()
	for _, c := range cands {
		if gs.ctrl.ShouldTrigger(core.ObjectID(e.key), core.ObjectID(c.other.key),
			p.toSim(now), p.toSim(c.validatedAt), p.toSim(c.other.nextAt)) {
			toTrigger = append(toTrigger, c.other)
		}
	}
	p.schedMu.Unlock()
	gs.mu.Unlock()
	for _, other := range toTrigger {
		// Same group ⇒ same affinity worker ⇒ the triggered poll runs
		// strictly after the current one; enqueueing is non-blocking.
		p.workerFor(other).enqueue(job{e: other, triggered: true})
	}
}

// groupState looks up the state for a group name ("" returns nil).
func (p *Proxy) groupState(group string) *groupState {
	if group == "" {
		return nil
	}
	p.groupMu.RLock()
	gs := p.groups[group]
	p.groupMu.RUnlock()
	return gs
}

// groupStateOrCreate returns the state for group, creating it with the
// given δ on first use.
func (p *Proxy) groupStateOrCreate(group string, groupDelta time.Duration) *groupState {
	p.groupMu.Lock()
	defer p.groupMu.Unlock()
	gs, ok := p.groups[group]
	if !ok {
		gs = &groupState{ctrl: core.NewMutualTimeController(core.MutualTimeConfig{
			Delta: groupDelta,
			Mode:  p.cfg.Mode,
		})}
		p.groups[group] = gs
	}
	return gs
}
