package webproxy

import (
	"time"

	"broadway/internal/push"
)

// This file is the proxy's downstream face: the event relay that lets a
// hierarchy of proxies share one origin subscription. A relay-enabled
// proxy owns a push.Hub with its own sequence space, served at
// Config.RelayPath over the same SSE /events protocol the origin
// speaks, so a leaf proxy subscribes to a parent exactly as the parent
// subscribes to the origin — the fan-out cost of N edge proxies lands
// on the hierarchy, not on the origin.
//
// Three publication paths feed the relay hub:
//
//   - Pass-through: every update event arriving on the parent's own
//     upstream channel is republished immediately (before the parent's
//     own pushed poll runs), resident or not — a leaf may well cache an
//     object its parent does not.
//   - Confirmation: every locally confirmed update (a poll of any kind
//     that observed a modification) is republished. This closes the
//     pass-through race — a leaf that polls the parent on the
//     pass-through event can catch the parent still stale and learn
//     nothing; the confirmation event arrives once the parent's copy is
//     fresh and drives a second leaf poll — and it is also what feeds
//     leaves under a pure-polling parent (relay on, upstream push off).
//   - Reset: when the parent's upstream stream dies, or resyncs with a
//     Reset hello, the parent's own view has a hole, so everything it
//     relays is suspect from that instant. Hub.Reset pushes a
//     mid-stream hello/Reset frame to every connected leaf (driving
//     their fallback sweeps, without dropping their connections) and
//     arms the hub's barrier so leaves that were disconnected across
//     the hole are Reset when they resume.
//
// Duplicate events (a pass-through and its confirmation, or a
// confirmation racing the origin's own announcement) are harmless:
// delivery is at-least-once, a leaf coalesces queued pushed polls per
// object, and a redundant poll costs one conditional request answered
// 304.

// relayUpstreamEvent republishes an update event received on the
// upstream channel into the relay hub (pass-through path). The payload
// rides along untouched: a value-negotiated leaf installs it from this
// one frame, so the whole subtree is fed by the single origin message.
func (p *Proxy) relayUpstreamEvent(ev push.Event) {
	if p.relay == nil || ev.Kind != push.KindUpdate {
		return
	}
	p.relay.Publish(ev) // Publish re-assigns Seq into the relay's own space
}

// relayDeltaFloor is the body size below which the confirmation relay
// does not bother computing a delta: the full payload of a tiny object
// costs about as much as the delta frame's envelope, and the encoder
// run is pure waste.
const relayDeltaFloor = 256

// relayConfirmedUpdate announces a locally confirmed modification of a
// cached object to downstream subscribers (confirmation path). With
// value-carrying push enabled the freshly installed body rides along —
// published after the body swap — so even under a pure-polling parent
// (relay on, upstream push off) the leaves install the update with zero
// confirmation polls.
//
// prevBody/prevDigest are the body this update replaced (nil/empty when
// unknown or unchanged): the base downstream subscribers still hold.
// When a delta against it pays, it rides the publication as a sidecar —
// re-based to THIS proxy's body history, which is what its children
// track — and the hub picks delta vs full vs chunked per subscriber.
func (p *Proxy) relayConfirmedUpdate(e *entry, modTime time.Time, prevBody []byte, prevDigest string) {
	if p.relay == nil {
		return
	}
	ev := push.Event{
		Kind:    push.KindUpdate,
		Key:     e.key,
		Group:   e.group,
		ModTime: modTime,
	}
	if p.cfg.PushValues {
		e.mu.RLock()
		ev.Body = e.body // replaced wholesale on refresh, never mutated: safe to share
		ev.HasBody = true
		ev.ContentType = e.contentType
		ev.Digest = e.bodyDigest
		e.mu.RUnlock()
		if ev.Digest == "" {
			ev.Digest = push.DigestOf(ev.Body)
		}
		if len(prevBody) >= relayDeltaFloor && prevDigest != "" && prevDigest != ev.Digest {
			if d, ok := push.MakeDelta(prevBody, ev.Body); ok {
				ev.DeltaBody = d
				ev.BaseDigest = prevDigest
				ev.DeltaCodec = push.DeltaCodecBlock
				p.pushDeltaRebased.Add(1)
			}
		}
	}
	p.relay.Publish(ev)
}

// relayAppliedUpdate republishes a directly installed pushed payload
// downstream, after the local body swap. The pass-through frame already
// carried the same payload, but a polling (non-value) leaf that fetched
// on it may have raced the parent's install and seen the stale copy;
// this confirmation — exactly like the poll-confirmed one — is what
// closes that window. Value-negotiated leaves recognize it as a
// duplicate by its modification instant and do nothing.
//
// The upstream event's ModTime is republished verbatim, zero included:
// stamping this proxy's own clock onto a timeless event would poison
// children whose origin's clock lags it — their duplicate check and
// If-Modified-Since validators would then suppress genuinely newer
// origin updates until real modification times caught up to the
// fabricated one.
func (p *Proxy) relayAppliedUpdate(e *entry, ev *push.Event) {
	if p.relay == nil {
		return
	}
	out := *ev
	out.Key = e.key
	out.Group = e.group
	p.relay.Publish(out)
}

// relayReset propagates an upstream hole downstream: connected leaves
// get a mid-stream hello/Reset (their fallback sweeps bound the
// staleness the hole could hide), and leaves disconnected across it are
// Reset when they resume.
func (p *Proxy) relayReset() {
	if p.relay != nil {
		p.relay.Reset()
	}
}

// KillRelayStreams terminates every connected downstream stream without
// disabling the endpoint: children reconnect immediately and catch up
// from the relay's replay ring (or are Reset when the gap outran it).
// It is the chaos hook mirroring WebOrigin.KillPushStreams, used by the
// hierarchy soaks to model a transient parent→leaf network cut. A
// no-op when the relay is disabled.
func (p *Proxy) KillRelayStreams() {
	if p.relay != nil {
		p.relay.KillAll()
	}
}

// RelayStats reports the state of the downstream event relay.
type RelayStats struct {
	// Enabled reports whether the proxy was configured to relay events.
	Enabled bool
	// Path is the endpoint the relayed stream is served at.
	Path string
	// Hub is the relay hub's backpressure snapshot: sequence head,
	// replay occupancy, per-subscriber lag, resets announced.
	Hub push.HubStats
}

// RelayStats returns the downstream relay's counters (zero-valued when
// the relay is disabled).
func (p *Proxy) RelayStats() RelayStats {
	if p.relay == nil {
		return RelayStats{}
	}
	return RelayStats{
		Enabled: true,
		Path:    p.cfg.RelayPath,
		Hub:     p.relay.Stats(),
	}
}
