package webproxy

import (
	"net/url"
	"strings"
	"testing"
)

// FuzzCanonicalKey fuzzes the canonical cache key over raw request
// targets (the form ServeHTTP receives). Two properties are pinned:
//
//  1. Idempotence: canonicalizing a canonical key is a fixed point, so
//     an object's key never drifts when a key round-trips through a URL
//     (as fetch and the stats accessors do).
//  2. Shard stability: every derivation of an equal canonical key hashes
//     to the same shard, so a canonicalized re-lookup can never land on
//     a different shard than the original admission — including query
//     parameter permutations, which must collapse to one key.
func FuzzCanonicalKey(f *testing.F) {
	for _, seed := range []string{
		"/",
		"/stock?sym=A",
		"/stock?b=2&a=1",
		"/q?a=1&a=2&b=3",
		"/report%3Fdaily",
		"/x?a=%zz&b=1",
		"/path/with%20space?k=v%20w",
		"/plain?",
		"//double/slash?x=1",
		"/semi?a=1;b=2",
		"/uni/é?q=ü",
	} {
		f.Add(seed)
	}
	const shards = 64
	mask := uint32(shards - 1)
	f.Fuzz(func(t *testing.T, target string) {
		if !strings.HasPrefix(target, "/") || strings.ContainsAny(target, " \x00\r\n") {
			t.Skip() // not a plausible request target
		}
		u, err := url.ParseRequestURI(target)
		if err != nil {
			t.Skip()
		}
		key := canonicalKey(u)

		// Idempotence: re-parsing the key as a request target and
		// canonicalizing again must reproduce it exactly.
		u2, err := url.ParseRequestURI(key)
		if err != nil {
			t.Fatalf("canonical key %q (from %q) is not a parseable request target: %v", key, target, err)
		}
		key2 := canonicalKey(u2)
		if key2 != key {
			t.Fatalf("canonicalize not idempotent: %q -> %q -> %q", target, key, key2)
		}
		if fnv32(key)&mask != fnv32(key2)&mask {
			t.Fatalf("equal keys %q hashed to different shards", key)
		}

		// Permuting well-formed query parameters (distinct names, so
		// per-name value order is preserved) must collapse to the same
		// key and therefore the same shard.
		if u.RawQuery == "" {
			return
		}
		q, err := url.ParseQuery(u.RawQuery)
		if err != nil || len(q) < 2 {
			return
		}
		names := make([]string, 0, len(q))
		for name, vals := range q {
			if len(vals) != 1 {
				return // duplicate-valued params are order-sensitive
			}
			names = append(names, name)
		}
		// Rebuild the query with the name order rotated by one.
		var b strings.Builder
		for i := range names {
			name := names[(i+1)%len(names)]
			if b.Len() > 0 {
				b.WriteByte('&')
			}
			b.WriteString(url.QueryEscape(name))
			b.WriteByte('=')
			b.WriteString(url.QueryEscape(q.Get(name)))
		}
		permuted := *u
		permuted.RawQuery = b.String()
		permKey := canonicalKey(&permuted)
		if permKey != key {
			t.Fatalf("parameter permutation fragmented the cache: %q vs %q (target %q)", key, permKey, target)
		}
		if fnv32(permKey)&mask != fnv32(key)&mask {
			t.Fatalf("permuted key %q landed on a different shard than %q", permKey, key)
		}
	})
}
