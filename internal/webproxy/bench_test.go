package webproxy

import (
	"fmt"
	"net/url"
	"testing"
	"time"

	"broadway/internal/push"
)

// BenchmarkStoreEvictScan measures the CLOCK victim scan on a full
// store: every put displaces exactly one resident, so each iteration
// pays for one sweep (access-bit clearing, group-lives accounting,
// ring/map removal) plus the insert and ledger updates.
func BenchmarkStoreEvictScan(b *testing.B) {
	const capacity = 4096
	s := newStore(64)
	for i := 0; i < capacity; i++ {
		e := &entry{key: fmt.Sprintf("/seed/%d", i)}
		e.size.Store(1024)
		s.put(e.key, e, capacity, -1, true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &entry{key: fmt.Sprintf("/churn/%d", i)}
		e.size.Store(1024)
		_, _, victims, _ := s.put(e.key, e, capacity, -1, true)
		if len(victims) != 1 {
			b.Fatalf("iteration %d evicted %d entries, want 1", i, len(victims))
		}
	}
}

// BenchmarkValuePushApply measures the value-carrying fast path: one
// pushed payload installed end to end — dedupe check, digest
// verification, body swap, ledger re-charge — with no origin involved.
// This is the per-update cost that replaces a full confirmation poll
// (network round trip + conditional GET) under value push.
func BenchmarkValuePushApply(b *testing.B) {
	origin, _ := url.Parse("http://origin.invalid")
	p, err := New(Config{Origin: origin, PushValues: true})
	if err != nil {
		b.Fatal(err)
	}
	e := &entry{key: "/quote/acme"}
	e.size.Store(entrySize(e.key, nil))
	p.store.put(e.key, e, -1, -1, true)

	body := []byte("165.3800\n")
	digest := push.DigestOf(body)
	base := time.Unix(1_700_000_000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := push.Event{
			Kind:        push.KindUpdate,
			Key:         e.key,
			ModTime:     base.Add(time.Duration(i+1) * time.Second),
			Body:        body,
			HasBody:     true,
			ContentType: "text/plain",
			Digest:      digest,
		}
		if !p.applyPushedValue(e, &ev) {
			b.Fatal("apply fell back")
		}
	}
	b.StopTimer()
	if got := p.pushApplied.Load(); got != uint64(b.N) {
		b.Fatalf("applied %d of %d", got, b.N)
	}
}

// BenchmarkStoreHitMark isolates the hit path's store cost — shard
// lookup plus the lock-free CLOCK access-bit store — to confirm
// replacement added no lock acquisitions to hits (compare the
// end-to-end figure in the root BenchmarkProxyHitParallel).
func BenchmarkStoreHitMark(b *testing.B) {
	const objects = 1024
	s := newStore(64)
	keys := make([]string, objects)
	for i := range keys {
		keys[i] = fmt.Sprintf("/obj/%d", i)
		e := &entry{key: keys[i]}
		e.size.Store(1024)
		s.put(keys[i], e, -1, -1, true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			e := s.get(keys[i%objects])
			if e == nil {
				b.Error("lost an entry")
				return
			}
			e.markAccessed()
			i++
		}
	})
}
