package webproxy

import (
	"fmt"
	"testing"
)

// BenchmarkStoreEvictScan measures the CLOCK victim scan on a full
// store: every put displaces exactly one resident, so each iteration
// pays for one sweep (access-bit clearing, group-lives accounting,
// ring/map removal) plus the insert and ledger updates.
func BenchmarkStoreEvictScan(b *testing.B) {
	const capacity = 4096
	s := newStore(64)
	for i := 0; i < capacity; i++ {
		e := &entry{key: fmt.Sprintf("/seed/%d", i)}
		e.size.Store(1024)
		s.put(e.key, e, capacity, -1, true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &entry{key: fmt.Sprintf("/churn/%d", i)}
		e.size.Store(1024)
		_, _, victims, _ := s.put(e.key, e, capacity, -1, true)
		if len(victims) != 1 {
			b.Fatalf("iteration %d evicted %d entries, want 1", i, len(victims))
		}
	}
}

// BenchmarkStoreHitMark isolates the hit path's store cost — shard
// lookup plus the lock-free CLOCK access-bit store — to confirm
// replacement added no lock acquisitions to hits (compare the
// end-to-end figure in the root BenchmarkProxyHitParallel).
func BenchmarkStoreHitMark(b *testing.B) {
	const objects = 1024
	s := newStore(64)
	keys := make([]string, objects)
	for i := range keys {
		keys[i] = fmt.Sprintf("/obj/%d", i)
		e := &entry{key: keys[i]}
		e.size.Store(1024)
		s.put(keys[i], e, -1, -1, true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			e := s.get(keys[i%objects])
			if e == nil {
				b.Error("lost an entry")
				return
			}
			e.markAccessed()
			i++
		}
	})
}
