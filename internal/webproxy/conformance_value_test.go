package webproxy

import (
	"strings"
	"testing"
	"time"

	"broadway/internal/core"
	"broadway/internal/httpx"
	"broadway/internal/metrics"
	simorigin "broadway/internal/origin"
	simproxy "broadway/internal/proxy"
	"broadway/internal/push"
	"broadway/internal/sim"
	"broadway/internal/simtime"
	"broadway/internal/trace"
	"broadway/internal/tracegen"
	"broadway/internal/webserver"
)

// This file is the value-domain conformance battery of ISSUE 5: the
// Table 3 stock presets (AT&T, Yahoo) replayed through the live stack
// on the stepped virtual clock. Pull mode is held against the
// discrete-event simulator's AdaptiveTTR prediction exactly as the
// temporal battery does with LIMD; push mode must deliver the
// tentpole's promise — every update installed from the event payload
// itself, zero Δv violations, zero confirmation polls — one-hop and
// through a relaying parent, and with hostile injections (digest
// mismatches, over-cap payloads) demonstrably degrading to a pushed
// poll without widening the staleness bound.

// Value conformance parameters: Δv sized to each preset's tick
// volatility (Table 3's operating regime), TTR ∈ [10s, 5min], horizons
// clipped to CI-sized windows dense enough to prove something
// (AT&T ≈ one tick / 16.5s, Yahoo ≈ one / 4.9s).
const (
	attDelta     = 0.10
	yahooDelta   = 1.0
	attHorizon   = time.Hour
	yahooHorizon = 20 * time.Minute
)

var valueBounds = core.TTRBounds{Min: 10 * time.Second, Max: 5 * time.Minute}

// valueTrace clips and second-aligns a stock preset.
func valueTrace(t *testing.T, tr *trace.Trace, horizon time.Duration) *trace.Trace {
	t.Helper()
	clipped := clipRound(tr, horizon)
	if clipped.NumUpdates() < 20 {
		t.Fatalf("clipped %s has only %d ticks; the battery would prove nothing",
			tr.Name, clipped.NumUpdates())
	}
	return clipped
}

// predictValue runs the discrete-event simulator over the trace with
// the paper's adaptive Δv policy and evaluates the value-domain report.
func predictValue(t *testing.T, tr *trace.Trace, delta float64, bounds core.TTRBounds) (metrics.ValueReport, uint64) {
	t.Helper()
	eng := sim.New(0)
	org := simorigin.New()
	if err := org.Host("obj", tr, true); err != nil {
		t.Fatal(err)
	}
	px := simproxy.New(eng, org)
	if err := px.RegisterObject("obj", core.NewAdaptiveTTR(core.AdaptiveTTRConfig{
		Delta:  delta,
		Bounds: bounds,
	})); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(simtime.At(tr.Duration)); err != nil {
		t.Fatal(err)
	}
	return metrics.EvaluateValue(tr, px.Log("obj"), delta, tr.Duration), org.TotalPolls()
}

// sameInstantMoves counts ticks whose single-step move reaches delta.
// The per-poll violation metric compares the cached value just before a
// refresh against the server value AT the refresh instant; a payload
// applied at exactly the tick's virtual instant therefore "violates"
// whenever one tick alone moves ≥ Δv, even though cache and server
// switched atomically and no user could ever observe the divergence
// (OutOfSync stays 0). Those artifacts bound the violations a perfect
// value-push run may report.
func sameInstantMoves(tr *trace.Trace, delta float64) int {
	n := 0
	prev := tr.InitialValue
	for _, u := range tr.Updates {
		if d := u.Value - prev; d >= delta || -d >= delta {
			n++
		}
		prev = u.Value
	}
	return n
}

// assertValuePushPerfect applies the tentpole's Δv assertions to a
// value-push refresh log: no observable out-of-sync time at all, every
// refresh installing the exact server value of its instant, and no
// violations beyond the same-instant metric artifact.
func assertValuePushPerfect(t *testing.T, name string, tr *trace.Trace, log []metrics.Refresh, delta float64, meas metrics.ValueReport) {
	t.Helper()
	if meas.OutOfSync != 0 || meas.FidelityByTime != 1 {
		t.Errorf("%s: cache was Δv-out-of-sync for %v (time fidelity %.4f); value push must leave none",
			name, meas.OutOfSync, meas.FidelityByTime)
	}
	if artifacts := sameInstantMoves(tr, delta); meas.Violations > artifacts {
		t.Errorf("%s: %d Δv violations exceed the %d same-instant artifacts — real staleness leaked",
			name, meas.Violations, artifacts)
	}
	for _, r := range log {
		if got, want := r.Value, tr.ValueAt(r.At.Duration()); got != want {
			t.Fatalf("%s: refresh at %v installed %v, server held %v", name, r.At, got, want)
		}
	}
}

// valueReplayConfig is the shared live-stack configuration of the
// stock replays.
func valueReplayConfig(pushOn bool) Config {
	cfg := Config{
		DefaultDelta: time.Minute,
		Bounds:       valueBounds,
	}
	if pushOn {
		cfg.PushStretch = 16
		cfg.PushValues = true
	}
	return cfg
}

// runValuePreset replays one stock preset pull and push and applies the
// battery's assertions; inject, when non-nil, is wired into the push
// run's replay objects.
func runValuePreset(t *testing.T, tr *trace.Trace, delta float64, horizon time.Duration) {
	t.Helper()
	path := "/" + tr.Name
	tol := httpx.Tolerances{ValueDelta: delta}
	pred, predPolls := predictValue(t, tr, delta, valueBounds)

	// Pull fidelity: the live stack running AdaptiveTTR over the same
	// trace must land near the simulator's prediction, at comparable
	// poll cost — the same conformance bar the temporal presets clear.
	pull := replayTrace(t, []replayObject{{path: path, tr: tr, tol: tol}}, horizon,
		valueReplayConfig(false), false)
	measPull := metrics.EvaluateValue(tr, pull.logs[path], delta, horizon)
	t.Logf("%s pull measured:  %+v (origin polls %d)", tr.Name, measPull, pull.originPolls)
	t.Logf("%s pull predicted: %+v (origin polls %d)", tr.Name, pred, predPolls)
	const tol8 = 0.08
	if d := measPull.FidelityByViolations - pred.FidelityByViolations; d < -tol8 || d > tol8 {
		t.Errorf("%s: Δv per-poll fidelity diverged: measured %.3f predicted %.3f",
			tr.Name, measPull.FidelityByViolations, pred.FidelityByViolations)
	}
	if lo, hi := pred.Polls/2, pred.Polls*2; measPull.Polls < lo || measPull.Polls > hi {
		t.Errorf("%s: poll volume diverged: measured %d predicted %d", tr.Name, measPull.Polls, pred.Polls)
	}

	// Push: every tick rides the payload — zero Δv violations, zero
	// confirmation polls on the pushed path.
	push := replayTrace(t, []replayObject{{path: path, tr: tr, tol: tol}}, horizon,
		valueReplayConfig(true), true)
	measPush := metrics.EvaluateValue(tr, push.logs[path], delta, horizon)
	t.Logf("%s push measured: %+v (origin polls %d, applied %d, pushed polls %d, stats %+v)",
		tr.Name, measPush, push.originPolls, push.applied, push.pushedPolls, push.pushStats)
	assertValuePushPerfect(t, tr.Name, tr, push.logs[path], delta, measPush)
	if push.pushedPolls != 0 {
		t.Errorf("%s: %d pushed confirmation polls; payload delivery must cost zero", tr.Name, push.pushedPolls)
	}
	if push.pushStats.ValueFallbacks != 0 {
		t.Errorf("%s: %d value fallbacks on the clean path", tr.Name, push.pushStats.ValueFallbacks)
	}
	if got, want := push.applied, uint64(tr.NumUpdates()); got != want {
		t.Errorf("%s: %d payload applications for %d ticks", tr.Name, got, want)
	}
	if push.originPolls >= pull.originPolls {
		t.Errorf("%s: value push saved no origin polls: pull=%d push=%d",
			tr.Name, pull.originPolls, push.originPolls)
	}
}

// TestConformanceValueATT replays the AT&T quote preset (Table 3's
// calm mover) pull vs push through the live stack.
func TestConformanceValueATT(t *testing.T) {
	runValuePreset(t, valueTrace(t, tracegen.ATT(), attHorizon), attDelta, attHorizon)
}

// TestConformanceValueYahoo replays the Yahoo quote preset (Table 3's
// volatile mover) pull vs push through the live stack.
func TestConformanceValueYahoo(t *testing.T) {
	runValuePreset(t, valueTrace(t, tracegen.Yahoo(), yahooHorizon), yahooDelta, yahooHorizon)
}

// TestConformanceValueTwoHop is the hierarchy half of the tentpole
// proof: an AT&T tick reaches a leaf through a relaying parent as one
// payload-carrying message — the leaf installs it with zero Δv
// violations and zero confirmation polls against the parent, and the
// parent issues zero confirmation polls against the origin.
func TestConformanceValueTwoHop(t *testing.T) {
	tr := valueTrace(t, tracegen.ATT(), attHorizon)
	path := "/" + tr.Name
	res := replayTraceTwoHop(t, []replayObject{{path: path, tr: tr,
		tol: httpx.Tolerances{ValueDelta: attDelta}}}, attHorizon, 16, 0, true, 0)

	meas := metrics.EvaluateValue(tr, res.leafLogs[path], attDelta, attHorizon)
	t.Logf("leaf measured: %+v (origin polls %d, applied %d, pushed polls %d, parent %+v, leaf %+v)",
		meas, res.originPolls, res.leafApplied, res.leafPushedPolls, res.parentPush, res.leafPush)
	assertValuePushPerfect(t, "two-hop "+tr.Name, tr, res.leafLogs[path], attDelta, meas)
	if res.leafPushedPolls != 0 {
		t.Errorf("leaf issued %d confirmation polls; the payload must feed it directly", res.leafPushedPolls)
	}
	if res.leafApplied == 0 {
		t.Error("leaf never installed a payload; the relay stripped the values")
	}
	if res.parentPush.ValueFallbacks != 0 {
		t.Errorf("parent fell back %d times on the clean path", res.parentPush.ValueFallbacks)
	}
	if res.leafPush.ValueFallbacks != 0 {
		t.Errorf("leaf fell back %d times on the clean path", res.leafPush.ValueFallbacks)
	}
	if res.relay.Hub.Seq == 0 {
		t.Error("parent relayed nothing")
	}
}

// TestConformanceValueLargeObjectTwoHop is the ladder's large-object
// acceptance run: the AT&T preset with every body padded to ~12 KiB
// against a 4 KiB negotiated cap on both hops. The first payload must
// travel chunked (it exceeds every cap), every later tick must ride the
// delta rung at both hops (the padded bodies differ by a few bytes),
// and the Δv bound must hold with zero confirmation polls and zero
// fallbacks anywhere in the chain.
func TestConformanceValueLargeObjectTwoHop(t *testing.T) {
	const (
		largeCap = 4 << 10
		largePad = 12 << 10
	)
	tr := valueTrace(t, tracegen.ATT(), attHorizon/2)
	path := "/" + tr.Name
	res := replayTraceTwoHop(t, []replayObject{{path: path, tr: tr,
		tol: httpx.Tolerances{ValueDelta: attDelta}, pad: largePad}},
		attHorizon/2, 16, 0, true, largeCap)

	meas := metrics.EvaluateValue(tr, res.leafLogs[path], attDelta, attHorizon/2)
	t.Logf("leaf measured: %+v (origin polls %d, applied %d, pushed polls %d, parent %+v, leaf %+v)",
		meas, res.originPolls, res.leafApplied, res.leafPushedPolls, res.parentPush, res.leafPush)
	assertValuePushPerfect(t, "large two-hop "+tr.Name, tr, res.leafLogs[path], attDelta, meas)
	if res.leafPushedPolls != 0 {
		t.Errorf("leaf issued %d confirmation polls; the ladder must feed it directly", res.leafPushedPolls)
	}
	if res.parentPush.ValueFallbacks != 0 || res.leafPush.ValueFallbacks != 0 {
		t.Errorf("fallbacks on the clean path: parent %d leaf %d",
			res.parentPush.ValueFallbacks, res.leafPush.ValueFallbacks)
	}
	if res.parentPush.DeltaBaseMisses != 0 || res.leafPush.DeltaBaseMisses != 0 {
		t.Errorf("base misses on the clean path: parent %d leaf %d",
			res.parentPush.DeltaBaseMisses, res.leafPush.DeltaBaseMisses)
	}
	// Both hops must have used both expensive-body rungs: chunks for the
	// first over-cap delivery, deltas once a base is held.
	if res.parentPush.ChunksAssembled == 0 {
		t.Errorf("parent assembled no chunk sets: %+v", res.parentPush)
	}
	if res.parentPush.DeltaApplied == 0 {
		t.Errorf("parent applied no deltas: %+v", res.parentPush)
	}
	if res.leafPush.DeltaApplied == 0 {
		t.Errorf("leaf applied no deltas: %+v", res.leafPush)
	}
	// Re-basing at the parent is what feeds the leaf's delta rung.
	if res.parentPush.DeltaRebased == 0 {
		t.Errorf("parent republished no delta sidecars: %+v", res.parentPush)
	}
}

// TestConformanceValueInjectionsFallBack drives the AT&T replay with
// hostile events interleaved after every clean update of two kinds —
// a forged payload whose digest does not cover it, and a body beyond
// the origin hub's payload cap (degraded to an invalidation at publish
// time). Every injection must fall back to exactly one pushed
// confirmation poll, the forged bytes must never be installed, and the
// Δv bound must hold exactly as on the clean run.
func TestConformanceValueInjectionsFallBack(t *testing.T) {
	tr := valueTrace(t, tracegen.ATT(), attHorizon/2)
	path := "/" + tr.Name
	var injected uint64
	obj := replayObject{
		path: path,
		tr:   tr,
		tol:  httpx.Tolerances{ValueDelta: attDelta},
		inject: func(o *webserver.Origin, rev int) {
			switch rev % 4 {
			case 1:
				// Forged payload: plausible body, digest that does not
				// cover it. The proxy must refuse it and poll.
				o.InjectPushEvent(push.Event{
					Kind: push.KindUpdate, Key: path,
					Body: []byte("999999.99\n"), HasBody: true,
					Digest: "00000000deadbeef",
				})
				injected++
			case 2:
				// Forged-base pure delta: no stream holds the base it
				// claims, and a pure delta has no full form to fall back
				// on, so the hub walks the whole ladder down to a
				// stripped invalidation and the proxy confirms by
				// polling. The hostile bytes can never be applied.
				o.InjectPushEvent(push.Event{
					Kind: push.KindUpdate, Key: path,
					Body: []byte{0x01, 0x02, '9', '9'}, HasBody: true,
					Digest:     push.DigestOf([]byte("unreachable")),
					BaseDigest: "00000000deadbeef", DeltaCodec: push.DeltaCodecBlock,
				})
				injected++
			case 3:
				// Over-cap payload: the origin hub degrades it to an
				// invalidation-only event at publish time; the proxy
				// sees a payload-less update and polls.
				o.InjectPushEvent(push.Event{
					Kind: push.KindUpdate, Key: path,
					Body: []byte(strings.Repeat("9", push.DefaultPayloadCap+1)), HasBody: true,
					Digest: push.DigestOf([]byte("unused")),
				})
				injected++
			}
		},
	}
	res := replayTrace(t, []replayObject{obj}, attHorizon/2, valueReplayConfig(true), true)
	meas := metrics.EvaluateValue(tr, res.logs[path], attDelta, attHorizon/2)
	t.Logf("measured: %+v (injected %d, fallbacks %d, applied %d, pushed polls %d)",
		meas, injected, res.pushStats.ValueFallbacks, res.applied, res.pushedPolls)
	if injected == 0 {
		t.Fatal("the injection hook never ran; the test exercised nothing")
	}
	assertValuePushPerfect(t, "injected "+tr.Name, tr, res.logs[path], attDelta, meas)
	if res.pushStats.ValueFallbacks != injected {
		t.Errorf("fallbacks = %d, want one per injection (%d)", res.pushStats.ValueFallbacks, injected)
	}
	if res.pushedPolls != res.pushStats.ValueFallbacks {
		t.Errorf("pushed confirmation polls %d != fallbacks %d", res.pushedPolls, res.pushStats.ValueFallbacks)
	}
	// The forged value must never have been observed by the evaluator:
	// every logged value is one the trace actually produced.
	for _, r := range res.logs[path] {
		if r.Value > 1000 {
			t.Fatalf("forged value %.2f reached the cache", r.Value)
		}
	}
}

// TestConformanceTemporalGuardianPreset extends the temporal battery
// (satellite of ISSUE 5, ROADMAP open item) over the Guardian preset —
// the densest Table 2 trace (one update / ≈4.9 min) — with the same
// pull-fidelity and push-no-worse assertions as CNN/FN and NYT/AP.
func TestConformanceTemporalGuardianPreset(t *testing.T) {
	const horizon = 4 * time.Hour // dense trace: 4h already holds ~50 updates
	tr := clipRound(tracegen.Guardian(), horizon)
	if tr.NumUpdates() < 20 {
		t.Fatalf("clipped Guardian trace has only %d updates", tr.NumUpdates())
	}
	pred, _ := predictTemporal(t, tr, confDelta, confBounds)

	pull := replayTrace(t, []replayObject{{path: "/guardian", tr: tr}}, horizon, Config{
		DefaultDelta: confDelta,
		Bounds:       confBounds,
	}, false)
	measPull := metrics.EvaluateTemporal(tr, pull.logs["/guardian"], confDelta, horizon)
	t.Logf("predicted: %v", pred)
	t.Logf("pull measured: %v (origin polls %d)", measPull, pull.originPolls)

	const tol = 0.08
	if d := measPull.FidelityByViolations - pred.FidelityByViolations; d < -tol || d > tol {
		t.Errorf("per-poll fidelity diverged: measured %.3f predicted %.3f",
			measPull.FidelityByViolations, pred.FidelityByViolations)
	}
	if lo, hi := pred.Polls/2, pred.Polls*2; measPull.Polls < lo || measPull.Polls > hi {
		t.Errorf("poll volume diverged: measured %d predicted %d", measPull.Polls, pred.Polls)
	}

	push := replayTrace(t, []replayObject{{path: "/guardian", tr: tr}}, horizon, Config{
		DefaultDelta: confDelta,
		Bounds:       confBounds,
		PushStretch:  16,
	}, true)
	measPush := metrics.EvaluateTemporal(tr, push.logs["/guardian"], confDelta, horizon)
	t.Logf("push measured: %v (origin polls %d)", measPush, push.originPolls)
	rPull := violationRate(measPull.Violations, measPull.Polls)
	rPush := violationRate(measPush.Violations, measPush.Polls)
	if rPush > rPull+1e-9 {
		t.Errorf("push raised the Δt violation rate: pull=%.4f push=%.4f", rPull, rPush)
	}
	if push.originPolls >= pull.originPolls {
		t.Errorf("push saved no origin polls: pull=%d push=%d", pull.originPolls, push.originPolls)
	}
}
