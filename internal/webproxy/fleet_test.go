package webproxy

import (
	"context"
	"fmt"
	"net/http/httptest"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"broadway/internal/metrics"
	"broadway/internal/push"
	"broadway/internal/simtime"
	"broadway/internal/trace"
	"broadway/internal/tracegen"
	"broadway/internal/webserver"
)

// This file is the fleet-scale fan-out soak of ISSUE 6: the conformance
// battery's stepped-clock replay discipline applied to a THREE-hop
// hierarchy — origin → root relay → mid relays → leaves — where the
// leaf tier is hundreds of interest-filtered subscribers. The key space
// is sharded by path prefix; every node declares only the slice it
// serves, so each hub skips the frames its subscriber never asked for.
//
// The phases, in replay order:
//
//  1. Healthy fan-out: trace updates flow to every shard; filtered
//     watchers must receive exactly their own shard's updates.
//  2. Resume-hole churn: every mid→leaf stream is killed and an update
//     published into ONE shard while the leaves are down. On resume,
//     watchers of the other shards have a hole consisting purely of
//     frames they never declared — they must come back with NO Reset
//     and no deliveries, while the matching shard's watchers get the
//     update (replayed or live).
//  3. Interest widening: a leaf admits an object outside every static
//     declaration. The admission must bounce the subscription at every
//     level (leaf, mid, root), each reconnect re-declaring a wider set,
//     until the origin announces the new object end to end.
//  4. Upstream kill/revive: the origin's event endpoint dies and comes
//     back. The root's blindness must propagate as mid-stream Resets
//     through both relay hops to every watcher — a REAL hole is
//     announced exactly where a filtered hole was not.
//
// Throughout, the four Δt-instrumented proxy leaves replay their
// shard's trace with zero violations: filtering and churn may cost
// frames and reconnects, never staleness beyond Δ.

const (
	fleetHorizon  = 4 * time.Hour
	fleetShards   = 4
	fleetWatchers = 200
)

// fleetWatcher is one raw interest-filtered subscriber at the leaf tier.
type fleetWatcher struct {
	prefix  string
	sub     *push.Subscriber
	cancel  context.CancelFunc
	done    chan struct{}
	events  atomic.Uint64 // update events delivered
	foreign atomic.Uint64 // deliveries outside the declared prefix
	resets  atomic.Uint64 // Reset hellos (connect-time or mid-stream)
}

func startFleetWatcher(t *testing.T, streamURL, prefix string) *fleetWatcher {
	t.Helper()
	w := &fleetWatcher{prefix: prefix, done: make(chan struct{})}
	sub, err := push.NewSubscriber(push.SubscriberConfig{
		URL: streamURL,
		OnEvent: func(ev push.Event) {
			w.events.Add(1)
			if !strings.HasPrefix(ev.Key, prefix) {
				w.foreign.Add(1)
			}
		},
		OnConnect: func(hello push.Event, resumed bool) {
			if hello.Reset && resumed {
				w.resets.Add(1)
			}
		},
		Interest: func() push.InterestSet {
			return push.NewInterest([]string{prefix}, nil)
		},
		// Wide enough that a churn's publish lands in the hub ring
		// before the reconnect, narrow enough to keep the soak fast.
		BackoffMin:       5 * time.Millisecond,
		BackoffMax:       50 * time.Millisecond,
		HeartbeatTimeout: -1,
		PayloadCap:       push.DefaultPayloadCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.sub = sub
	ctx, cancel := context.WithCancel(context.Background())
	w.cancel = cancel
	go func() {
		defer close(w.done)
		sub.Run(ctx)
	}()
	return w
}

func TestFleetFanoutHierarchy(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet soak: skipped under -short (CI runs it in a dedicated job)")
	}
	clk := newSimClock()

	origin := webserver.NewOrigin(
		webserver.WithClock(clk.Now),
		webserver.WithHistoryExtension(true),
		webserver.WithPushEvents(""),
		webserver.WithPushValues(0),
	)
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()

	// One trace per shard, distinct presets so shard update instants
	// interleave rather than coincide.
	presets := []*trace.Trace{tracegen.CNNFN(), tracegen.NYTReuters(), tracegen.NYTAP(), tracegen.CNNFN()}
	objs := make([]replayObject, fleetShards)
	for i := range objs {
		tr := clipRound(presets[i], fleetHorizon)
		if tr.NumUpdates() < 3 {
			t.Fatalf("shard %d trace has only %d updates", i, tr.NumUpdates())
		}
		objs[i] = replayObject{path: fmt.Sprintf("/s%d/obj", i), tr: tr}
		origin.Set(objs[i].path, replayBody(objs[i], 0), "")
	}
	origin.Set("/s0/hole", []byte("hole rev 0"), "")
	origin.Set("/extra/obj", []byte("extra rev 0"), "")

	var logMu sync.Mutex
	leafLogs := make([]map[string][]metrics.Refresh, fleetShards)
	for i := range leafLogs {
		leafLogs[i] = make(map[string][]metrics.Refresh)
	}

	newNode := func(upstream string, relay bool, prefixes []string, obs func(PollObservation)) *Proxy {
		up, err := url.Parse(upstream)
		if err != nil {
			t.Fatal(err)
		}
		pushURL, err := url.Parse(upstream + "/events")
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(Config{
			Origin:               up,
			Clock:                clk.Now,
			PollWorkers:          1,
			DefaultDelta:         confDelta,
			Bounds:               confBounds,
			PushURL:              pushURL,
			PushStretch:          16,
			PushValues:           true,
			PushInterest:         true,
			PushPrefixes:         prefixes,
			PushHeartbeatTimeout: -1,
			PushBackoffMin:       time.Millisecond,
			PushBackoffMax:       10 * time.Millisecond,
			RelayEvents:          relay,
			PollObserver:         obs,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		return p
	}

	root := newNode(originSrv.URL, true, []string{"/s0/", "/s1/", "/s2/", "/s3/"}, nil)
	defer root.Close()
	rootSrv := httptest.NewServer(root)
	defer rootSrv.Close()

	mids := make([]*Proxy, 2)
	midSrvs := make([]*httptest.Server, 2)
	for j := range mids {
		mids[j] = newNode(rootSrv.URL, true,
			[]string{fmt.Sprintf("/s%d/", 2*j), fmt.Sprintf("/s%d/", 2*j+1)}, nil)
		defer mids[j].Close()
		midSrvs[j] = httptest.NewServer(mids[j])
		defer midSrvs[j].Close()
	}

	leaves := make([]*Proxy, fleetShards)
	for i := range leaves {
		shard := i
		leaves[i] = newNode(midSrvs[i/2].URL, false,
			[]string{fmt.Sprintf("/s%d/", i)},
			func(o PollObservation) {
				logMu.Lock()
				leafLogs[shard][o.Key] = append(leafLogs[shard][o.Key], metrics.Refresh{
					At:        simtime.At(o.At.Sub(clk.base)),
					Modified:  o.Modified,
					Value:     o.Value,
					Triggered: o.Triggered || o.Pushed,
				})
				logMu.Unlock()
			})
		defer leaves[i].Close()
	}

	nodes := []*Proxy{root, mids[0], mids[1], leaves[0], leaves[1], leaves[2], leaves[3]}
	upstreamSeq := []func() uint64{
		origin.PushSeq,
		func() uint64 { return root.RelayStats().Hub.Seq },
		func() uint64 { return root.RelayStats().Hub.Seq },
		func() uint64 { return mids[0].RelayStats().Hub.Seq },
		func() uint64 { return mids[0].RelayStats().Hub.Seq },
		func() uint64 { return mids[1].RelayStats().Hub.Seq },
		func() uint64 { return mids[1].RelayStats().Hub.Seq },
	}
	allConnected := func() bool {
		for _, n := range nodes {
			if !n.PushStats().Connected {
				return false
			}
		}
		return true
	}
	if !waitFor(t, 10*time.Second, allConnected) {
		t.Fatal("hierarchy never connected")
	}

	// Chain quiescence: every hop's stream position caught up to its
	// upstream's head (heartbeats advance it past filtered frames), every
	// proxy idle, stable across two passes. Disconnected hops are exempt
	// from the seq check — the chaos phases waitFor reconnection before
	// trusting a quiesce.
	quiesce := func() {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		stable := 0
		for {
			pass := func() bool {
				now := clk.Now()
				for i, n := range nodes {
					ps := n.PushStats()
					if ps.Connected && ps.LastSeq < upstreamSeq[i]() {
						return false
					}
					if n.InFlightPolls() != 0 {
						return false
					}
					if next, ok := n.NextRefreshAt(); ok && !next.After(now) {
						return false
					}
				}
				return true
			}
			if pass() {
				if stable++; stable >= 2 {
					return
				}
			} else {
				stable = 0
			}
			if time.Now().After(deadline) {
				t.Fatalf("fleet never quiesced: originSeq=%d rootSeq=%d midSeqs=[%d %d] now=%v",
					origin.PushSeq(), root.PushStats().LastSeq,
					mids[0].PushStats().LastSeq, mids[1].PushStats().LastSeq, clk.Now())
			}
			for _, n := range nodes {
				n.Kick()
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	quiesce()

	// Admit each shard's object at its leaf (cascading through mid and
	// root), plus the hole probe on leaf 0. Every key sits inside its
	// whole chain's static declaration, so admission must not bounce.
	clk.AdvanceTo(clk.base.Add(admissionPhase))
	for _, n := range nodes {
		n.Kick()
	}
	admit := func(leaf *Proxy, path string) {
		t.Helper()
		rec := httptest.NewRecorder()
		leaf.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("admission of %s: %d %s", path, rec.Code, rec.Body.String())
		}
	}
	for i, o := range objs {
		admit(leaves[i], o.path)
	}
	admit(leaves[0], "/s0/hole")
	quiesce()
	for _, n := range nodes {
		if b := n.PushStats().Bounces; b != 0 {
			t.Fatalf("a covered admission bounced the stream (%d bounces)", b)
		}
	}

	// The leaf tier: fleetWatchers filtered subscribers spread over the
	// mids, each declaring exactly one shard prefix.
	watchers := make([]*fleetWatcher, fleetWatchers)
	for i := range watchers {
		shard := i % fleetShards
		watchers[i] = startFleetWatcher(t, midSrvs[shard/2].URL+"/events", fmt.Sprintf("/s%d/", shard))
		defer func(w *fleetWatcher) {
			w.cancel()
			<-w.done
		}(watchers[i])
	}
	if !waitFor(t, 15*time.Second, func() bool {
		for _, w := range watchers {
			if w.sub.Connects() == 0 {
				return false
			}
		}
		return true
	}) {
		t.Fatal("watcher fleet never connected")
	}

	watcherMidSeq := func(i int) uint64 {
		return mids[(i%fleetShards)/2].RelayStats().Hub.Seq
	}
	watchersCaughtUp := func() bool {
		for i, w := range watchers {
			if w.sub.LastSeq() < watcherMidSeq(i) {
				return false
			}
		}
		return true
	}

	// Replay schedule: every shard's trace updates, plus the chaos
	// instants, all off the whole-second grid the updates live on.
	const (
		actHole       = -1 // kill every mid→leaf stream, update shard 0 only
		actExtraAdmit = -2 // admit an object outside every static declaration
		actExtraSet   = -3 // update it once the declarations have widened
	)
	type fleetEvent struct {
		at  time.Duration
		obj int // shard index, or one of the act* markers
		rev int
	}
	var events []fleetEvent
	for i, o := range objs {
		for r, u := range o.tr.Updates {
			events = append(events, fleetEvent{at: u.At, obj: i, rev: r + 1})
		}
	}
	events = append(events,
		fleetEvent{at: fleetHorizon/4 + 511*time.Millisecond, obj: actHole},
		fleetEvent{at: fleetHorizon/2 + 511*time.Millisecond, obj: actExtraAdmit},
		fleetEvent{at: fleetHorizon/2 + 5*time.Second + 511*time.Millisecond, obj: actExtraSet},
	)
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		return events[a].obj > events[b].obj // shard order for same-instant updates
	})

	runHoleChurn := func() {
		t.Helper()
		// Drain in-flight deliveries from the previous step before
		// snapshotting: a frame already written to a watcher's socket but
		// not yet counted would read as churn-window delivery.
		if !waitFor(t, 15*time.Second, watchersCaughtUp) {
			t.Fatal("watcher fleet never drained before the churn")
		}
		preEvents := make([]uint64, len(watchers))
		preConnects := make([]uint64, len(watchers))
		for i, w := range watchers {
			preEvents[i] = w.events.Load()
			preConnects[i] = w.sub.Connects()
		}
		preLeafConnects := make([]uint64, len(leaves))
		for i, l := range leaves {
			preLeafConnects[i] = l.PushStats().Connects
		}
		// Cut every mid→leaf stream, then publish into shard 0 while the
		// whole leaf tier is down: the update lands in the mid rings (the
		// root and mids stay connected), so every resumed stream sees a
		// hole — matching for shard 0, purely filtered for the rest.
		mids[0].KillRelayStreams()
		mids[1].KillRelayStreams()
		origin.Set("/s0/hole", []byte("hole rev 1"), "")
		if !waitFor(t, 10*time.Second, func() bool {
			for i, l := range leaves {
				ps := l.PushStats()
				if !ps.Connected || ps.Connects <= preLeafConnects[i] {
					return false
				}
			}
			return true
		}) {
			t.Fatal("proxy leaves never resumed after the mid-stream kill")
		}
		quiesce()
		if !waitFor(t, 15*time.Second, func() bool {
			for i, w := range watchers {
				if w.sub.Connects() <= preConnects[i] || w.sub.LastSeq() < watcherMidSeq(i) {
					return false
				}
			}
			return true
		}) {
			t.Fatal("watcher fleet never resumed after the mid-stream kill")
		}
		for i, w := range watchers {
			shard := i % fleetShards
			if r := w.resets.Load(); r != 0 {
				t.Errorf("watcher %d (shard %d) was Reset across a resume hole it never declared (%d resets)", i, shard, r)
			}
			got := w.events.Load()
			if shard == 0 {
				if got <= preEvents[i] {
					t.Errorf("shard-0 watcher %d missed the update published across the kill", i)
				}
			} else if got != preEvents[i] {
				t.Errorf("watcher %d (shard %d) received %d frames outside its interest across the churn",
					i, shard, got-preEvents[i])
			}
		}
	}

	runExtraAdmit := func() {
		t.Helper()
		admit(leaves[0], "/extra/obj")
		// The admission cascaded the object through mid 0 and the root;
		// none of their declarations cover /extra/, so each must bounce
		// and re-declare until the whole chain announces it.
		if !waitFor(t, 10*time.Second, func() bool {
			for _, n := range []*Proxy{root, mids[0], leaves[0]} {
				ps := n.PushStats()
				if !ps.Connected || ps.Bounces == 0 {
					return false
				}
				if !n.sub.DeclaredInterest().Matches("/extra/obj", "") {
					return false
				}
			}
			return true
		}) {
			t.Fatalf("interest widening never converged: bounces root=%d mid0=%d leaf0=%d",
				root.PushStats().Bounces, mids[0].PushStats().Bounces, leaves[0].PushStats().Bounces)
		}
		quiesce()
	}

	end := clk.base.Add(fleetHorizon)
	ei := 0
	for {
		var stepAt time.Time
		haveStep := false
		if ei < len(events) {
			stepAt = clk.base.Add(events[ei].at)
			haveStep = true
		}
		for _, n := range nodes {
			if next, ok := n.NextRefreshAt(); ok && !next.After(end) {
				if !haveStep || next.Before(stepAt) {
					stepAt = next
					haveStep = true
				}
			}
		}
		if !haveStep || stepAt.After(end) {
			break
		}
		clk.AdvanceTo(stepAt)
		for ei < len(events) && !clk.base.Add(events[ei].at).After(stepAt) {
			ev := events[ei]
			ei++
			switch ev.obj {
			case actHole:
				runHoleChurn()
			case actExtraAdmit:
				runExtraAdmit()
			case actExtraSet:
				origin.Set("/extra/obj", []byte("extra rev 1"), "")
			default:
				o := objs[ev.obj]
				origin.Set(o.path, replayBody(o, ev.rev), "")
			}
		}
		for _, n := range nodes {
			n.Kick()
		}
		quiesce()
	}
	clk.AdvanceTo(end)
	for _, n := range nodes {
		n.Kick()
	}
	quiesce()
	if !waitFor(t, 15*time.Second, watchersCaughtUp) {
		t.Fatal("watcher fleet never caught up to the replayed horizon")
	}

	// Snapshot the Δt logs before the upstream kill below adds
	// post-horizon sweep polls.
	logMu.Lock()
	finalLogs := make([]map[string][]metrics.Refresh, fleetShards)
	for i := range leafLogs {
		finalLogs[i] = make(map[string][]metrics.Refresh, len(leafLogs[i]))
		for k, v := range leafLogs[i] {
			finalLogs[i][k] = append([]metrics.Refresh(nil), v...)
		}
	}
	logMu.Unlock()

	// Phase 4: a REAL upstream hole. The root's blindness must propagate
	// as mid-stream Resets through both relay hops — every leaf proxy and
	// every watcher hears it, exactly where the filtered hole stayed
	// silent.
	preResets := make([]uint64, len(watchers))
	for i, w := range watchers {
		preResets[i] = w.resets.Load()
	}
	origin.SetPushAvailable(false)
	if !waitFor(t, 10*time.Second, func() bool { return !root.PushStats().Connected }) {
		t.Fatal("root never noticed the origin kill")
	}
	if !waitFor(t, 15*time.Second, func() bool {
		for _, l := range leaves {
			if l.PushStats().Resets == 0 {
				return false
			}
		}
		for i, w := range watchers {
			if w.resets.Load() <= preResets[i] {
				return false
			}
		}
		return true
	}) {
		t.Fatal("the origin kill never propagated Resets through the hierarchy")
	}
	origin.SetPushAvailable(true)
	if !waitFor(t, 10*time.Second, allConnected) {
		t.Fatal("hierarchy never re-armed after the revive")
	}
	quiesce()

	// --- Verdicts. ---
	if root.PushStats().Fallbacks == 0 {
		t.Error("the origin kill never produced a root fallback")
	}
	for i := range objs {
		log := finalLogs[i][objs[i].path]
		if len(log) < 3 {
			t.Fatalf("leaf %d recorded only %d polls", i, len(log))
		}
		meas := metrics.EvaluateTemporal(objs[i].tr, log, confDelta, fleetHorizon)
		t.Logf("leaf %d measured: %v", i, meas)
		if meas.Violations != 0 {
			t.Errorf("leaf %d Δt violations through the filtered hierarchy: %d", i, meas.Violations)
		}
	}
	for _, probe := range []struct{ key, want string }{
		{"/s0/hole", "hole rev 1"},
		{"/extra/obj", "extra rev 1"},
	} {
		body, ok := leaves[0].CachedBody(probe.key)
		if !ok || string(body) != probe.want {
			t.Errorf("leaf 0 %s = %q, %v; want %q", probe.key, body, ok, probe.want)
		}
	}
	for i, w := range watchers {
		if f := w.foreign.Load(); f != 0 {
			t.Errorf("watcher %d received %d frames outside its declared prefix %s", i, f, w.prefix)
		}
		if w.events.Load() == 0 {
			t.Errorf("watcher %d (prefix %s) received nothing over the whole soak", i, w.prefix)
		}
	}
	// Filtering did real work at both relay tiers: the root skipped
	// cross-subtree frames for the mids, the mids for their watchers.
	if f := root.RelayStats().Hub.Filtered; f == 0 {
		t.Error("root hub filtered nothing; mids were not interest-narrowed")
	}
	for j, m := range mids {
		if f := m.RelayStats().Hub.Filtered; f == 0 {
			t.Errorf("mid %d hub filtered nothing; watchers were not interest-narrowed", j)
		}
	}
	t.Logf("fleet: origin polls=%d rootHub=%+v mid0Hub=%+v mid1Hub=%+v",
		origin.Polls(), root.RelayStats().Hub, mids[0].RelayStats().Hub, mids[1].RelayStats().Hub)
}
