package webproxy

import (
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"broadway/internal/core"
	"broadway/internal/push"
)

// This file is the proxy side of the hybrid push–pull channel: the
// subscription manager that reconciles origin-driven invalidations with
// the TTR refresh schedule.
//
// The reconciliation rules are:
//
//   - A pushed invalidation for a resident object converts into an
//     immediate "pushed" job routed through the object's group-affinity
//     worker — the same path as a mutual-consistency triggered poll — so
//     MutualTimeController state stays single-threaded per group. With
//     Config.PushValues a payload-carrying event is installed directly
//     (digest-verified, byte-ledger-charged; see applyPushedValue) with
//     no origin request; otherwise — or when the payload cannot be
//     installed — the job polls: it revalidates via If-Modified-Since
//     and, when it confirms an update, runs the §3.2 group triggering
//     exactly as a scheduled poll would. Neither form disturbs the
//     object's regular TTR schedule or feeds its policy (pushes reveal
//     the origin's churn, not the polling frequency's fitness).
//   - While the channel is healthy, regular TTR polls are stretched by
//     Config.PushStretch (clamped to the TTR upper bound): push carries
//     the freshness burden, polling becomes a safety net. The
//     unstretched instant is remembered per entry.
//   - On disconnect the proxy falls back to pure paper-mode polling: the
//     catch-up sweep pulls every stretched schedule entry back to its
//     unstretched instant (immediately, if that instant already passed),
//     so no object's Δt guarantee is ever widened beyond what pure
//     polling would have delivered. Reconnects resume stretching; a
//     reconnect whose replay gap exceeded the origin's buffer (hello
//     Reset) also runs the sweep, because events were irrecoverably
//     missed while the proxy believed the channel healthy.

// newPushSubscriber wires the proxy's callbacks into a subscriber for
// cfg.PushURL.
func (p *Proxy) newPushSubscriber() (*push.Subscriber, error) {
	payloadCap := 0
	if p.cfg.PushValues {
		payloadCap = p.cfg.PushPayloadCap
	}
	scfg := push.SubscriberConfig{
		URL: p.cfg.PushURL.String(),
		// The proxy's upstream client is unusable here: its global
		// Timeout would kill the long-lived stream.
		Client:           &http.Client{},
		OnEvent:          p.handlePushEvent,
		OnConnect:        p.handlePushConnect,
		OnDisconnect:     p.handlePushDisconnect,
		OnFrameLoss:      p.handlePushFrameLoss,
		BackoffMin:       p.cfg.PushBackoffMin,
		BackoffMax:       p.cfg.PushBackoffMax,
		HeartbeatTimeout: p.cfg.PushHeartbeatTimeout,
		PayloadCap:       payloadCap,
	}
	if p.cfg.PushInterest {
		scfg.Interest = p.declaredInterest
	}
	if p.cfg.PushValues {
		scfg.Held = p.heldDigests
	}
	return push.NewSubscriber(scfg)
}

// heldAdvertiseMax bounds the held-digest terms advertised on connect
// (mirroring the server-side per-stream cap): the largest bodies are
// the ones whose deltas save the most, so the advertisement is the
// top residents by size, not an arbitrary slice of the store.
const heldAdvertiseMax = 64

// heldDigests is the Held hook: the body digests this proxy holds,
// advertised at (re)connect so the upstream can open matching updates
// on the delta rung. Evaluated per connection attempt — a reconnect
// after churn advertises the current residency, never a stale snapshot.
func (p *Proxy) heldDigests() []push.HeldDigest {
	var cands []*entry
	for i := range p.store.shards {
		sh := &p.store.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			cands = append(cands, e)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].size.Load() > cands[j].size.Load()
	})
	if len(cands) > heldAdvertiseMax {
		cands = cands[:heldAdvertiseMax]
	}
	held := make([]push.HeldDigest, 0, len(cands))
	for _, e := range cands {
		if e.evicted.Load() || e.unpushable {
			continue
		}
		e.mu.RLock()
		d := e.bodyDigest
		if d == "" && len(e.body) > 0 {
			d = push.DigestOf(e.body)
		}
		e.mu.RUnlock()
		if d != "" {
			held = append(held, push.HeldDigest{Key: e.key, Digest: d})
		}
	}
	return held
}

// declaredInterest computes the interest set the subscriber declares on
// its next (re)connect: the configured static seeds, one first-path-
// segment prefix per resident object, and the sticky union of every
// downstream subscriber's own declaration. The closure runs per
// connection attempt, so a bounce (see Bounce) is all it takes to
// renegotiate. An empty result encodes as no query constraints — the
// upstream delivers everything — so filtering fails open, never closed.
func (p *Proxy) declaredInterest() push.InterestSet {
	prefixes := append([]string(nil), p.cfg.PushPrefixes...)
	for i := range p.store.shards {
		sh := &p.store.shards[i]
		sh.mu.RLock()
		for key := range sh.entries {
			prefixes = append(prefixes, residentPrefix(key))
		}
		sh.mu.RUnlock()
	}
	set := push.NewInterest(prefixes, p.cfg.PushGroups)
	p.downMu.Lock()
	down := p.downstream
	p.downMu.Unlock()
	return set.Union(down)
}

// residentPrefix maps a cache key to the interest prefix declared for
// it: its first path segment (slash included, so "/news/" never drags
// in "/newsy"). Folding siblings under one term keeps a large cache
// from exploding the declaration past the term bounds — overflow would
// widen it to match-all and forfeit filtering entirely. Query-bearing
// keys declare their path part; such objects are unpushable anyway
// (events are path-granular), so the term is only ever harmlessly wide.
func residentPrefix(key string) string {
	if len(key) > 1 && key[0] == '/' {
		if i := strings.IndexByte(key[1:], '/'); i >= 0 {
			return key[:i+2]
		}
	}
	if i := strings.IndexByte(key, '?'); i >= 0 {
		return key[:i]
	}
	return key
}

// noteDownstreamInterest folds a downstream subscriber's declared
// interest into the sticky union this proxy declares upstream (it is
// the relay hub's OnSubscribe hook). When the live upstream declaration
// does not cover the newcomer, the stream is bounced: the reconnect
// re-runs declaredInterest with the union folded in, so the subtree's
// objects are announced through this proxy from then on. Until that
// reconnect lands the child is no worse off than under a disconnected
// parent — its own stretch gate keeps uncovered objects polling.
func (p *Proxy) noteDownstreamInterest(is push.InterestSet) {
	if p.sub == nil || is.IsEmpty() {
		return
	}
	p.downMu.Lock()
	p.downstream = p.downstream.Union(is)
	p.downMu.Unlock()
	if !p.sub.DeclaredInterest().Covers(is) {
		p.sub.Bounce()
	}
}

// handlePushEvent converts an update notification into an immediate
// pushed job for the named object, if it is resident: a value-carrying
// event installs its payload directly on the object's affinity worker
// (see applyPushedValue), anything else runs today's pushed poll.
// Events for non-resident objects are dropped — the proxy only ever
// pays refresh traffic for objects it actually caches. Back-to-back
// events for one object coalesce onto a single queued job, with the
// entry's pendingPush slot always holding the NEWEST event so a
// coalesced burst installs the latest body, never a dropped
// predecessor's.
func (p *Proxy) handlePushEvent(ev push.Event) {
	p.pushEvents.Add(1)
	// The seq store is deferred so the job is enqueued (and counted in
	// InFlightPolls) before an observer waiting on PushStats().LastSeq
	// can conclude the event was handled.
	defer p.pushSeq.Store(ev.Seq)
	if ev.Kind != push.KindUpdate || ev.Key == "" {
		return
	}
	// Pass-through relay before the residency check: a child proxy may
	// cache objects this proxy does not. The payload rides along, so a
	// value-negotiated leaf installs it with zero polls against us.
	p.relayUpstreamEvent(ev)
	e := p.lookup(ev.Key)
	if e == nil || e.evicted.Load() {
		if p.applyPushedToDisk(ev) {
			return // demoted object: its disk record absorbed the update
		}
		p.pushDropped.Add(1)
		return
	}
	if p.cfg.PushValues {
		// Only the apply path reads pendingPush; an invalidation-only
		// proxy keeps its allocation-free event handling.
		e.pendingPush.Store(&ev)
	}
	if !e.pushQueued.CompareAndSwap(false, true) {
		return // a pushed job is already queued for this object
	}
	p.pushPolls.Add(1)
	p.pending.Add(1)
	p.workerFor(e).enqueue(job{e: e, kind: pollPushed})
}

// applyPushedValue installs a pushed event's payload directly into the
// cache — the value-carrying fast path: one message from the origin,
// zero confirmation polls. It runs on the entry's affinity worker (the
// same serialization domain as every poll of the object and its group),
// so body swaps, controller observations, and §3.2 triggering stay
// single-threaded exactly as they are for polls.
//
// It returns false when the payload cannot be installed — no payload on
// the event (a stripped or pure-invalidation frame), a digest mismatch
// (corruption somewhere along the relay chain), or a body that alone
// overflows MaxBytes (installing it would immediately evict the object)
// — and the caller degrades to the pushed confirmation poll, the next
// rung of the ladder. The Δ guarantee never rests on this path.
//
// A true return with no work done means the event was a duplicate (a
// relay's pass-through plus its confirmation, or a replayed frame): the
// cached copy already carries this or a newer modification instant, so
// neither a poll nor a re-install is owed.
func (p *Proxy) applyPushedValue(e *entry, ev *push.Event) bool {
	if !p.cfg.PushValues || !ev.HasBody {
		return false
	}
	if e.evicted.Load() {
		// Let the poll path's eviction check dispose of the job; nothing
		// may be installed for (or polled on behalf of) an evicted entry.
		return false
	}
	body := ev.Body
	wasDelta := false
	if ev.BaseDigest != "" && ev.DeltaCodec != 0 {
		// The body is a delta against a base the sender believes we
		// hold — the cheapest rung of the ladder. Reconstruct and verify
		// before anything is installed; any mismatch (a forged or stale
		// base, a hostile delta stream, a result that does not hash to
		// the frame's digest) falls through to the confirmation poll.
		full, ok := p.resolveDelta(e, ev)
		if !ok {
			return false
		}
		body = full
		wasDelta = true
	} else if push.DigestOf(ev.Body) != ev.Digest {
		return false
	}
	size := entrySize(e.key, body)
	if p.cfg.MaxBytes >= 0 && size > p.cfg.MaxBytes {
		// An object this size is refused at admission and self-evicts on
		// refresh growth; let the pushed poll run those established
		// unwind rules rather than duplicating them here.
		return false
	}
	now := p.cfg.Clock()

	e.mu.Lock()
	if e.hasLastMod && !ev.ModTime.IsZero() && !ev.ModTime.After(e.lastMod) {
		// Already at (or past) this version — origins guarantee strictly
		// increasing modification times, so an instant at or before the
		// cached one is a relay duplicate or a replayed frame. Nothing
		// to install, nothing to poll.
		e.mu.Unlock()
		return true
	}
	outcome := core.PollOutcome{
		Now:      p.toSim(now),
		Prev:     p.toSim(e.validatedAt),
		Modified: true,
	}
	if !ev.ModTime.IsZero() {
		outcome.LastModified = p.toSim(ev.ModTime)
		outcome.HasLastModified = true
	}
	e.failures = 0
	e.validatedAt = now
	e.body = body
	e.bodyDigest = ev.Digest // verified above: DigestOf(body)
	if ev.ContentType != "" {
		e.contentType = ev.ContentType
	}
	if !ev.ModTime.IsZero() {
		e.lastMod = ev.ModTime
		e.hasLastMod = true
	}
	if e.isValue {
		outcome.HasValue = true
		outcome.PrevValue = e.value
		outcome.Value = e.value
		if v, ok := parseValueBody(body); ok {
			e.value = v
			outcome.Value = v
		}
	}
	paired := e.paired
	e.mu.Unlock()

	e.applied.Add(1)
	p.pushApplied.Add(1)
	if wasDelta {
		p.pushDeltaApplied.Add(1)
	}

	// The downstream republication carries the reconstructed full body
	// (a delta frame's raw bytes would be useless to a leaf that missed
	// the base) plus the upstream delta as a sidecar: our children track
	// the same origin body history we do, so the base that matched here
	// matches there, and one origin delta feeds the whole subtree
	// without re-encoding.
	out := *ev
	if wasDelta {
		out.Body = body
		out.DeltaBody = ev.Body
		p.pushDeltaRebased.Add(1)
	}

	// The shared post-refresh bookkeeping: byte-ledger re-charge with
	// budget re-enforcement (the single-object overflow case was refused
	// above), the downstream republication AFTER the body swap — payload
	// included, so a value-negotiated leaf installs it directly and a
	// polling leaf that fetches on it finds the fresh copy, never the
	// stale one the pass-through frame raced — the eviction-token-
	// guarded controller observation, and the §3.2 group triggering an
	// update learned from a payload imposes exactly as one learned by
	// polling. pollPushed leaves the regular schedule untouched.
	p.finishRefresh(e, refreshResult{
		kind:    pollPushed,
		now:     now,
		outcome: outcome,
		paired:  paired,
		resized: true,
		newSize: size,
		applied: true,
		relay:   func() { p.relayAppliedUpdate(e, &out) },
	})
	return true
}

// resolveDelta reconstructs a pushed delta frame's full body against
// this proxy's resident copy of e. It reports ok=false — counting a
// base miss — when the advertised base digest does not match the body
// actually held, when the delta stream is malformed, or when the
// reconstruction does not hash to the frame's digest. The base digest
// is always compared against the digest of the bytes in hand (cached at
// the last swap, or hashed on demand), never against bookkeeping that
// could have gone stale — that is the invariant keeping a demoted or
// raced body from ever serving as a silent wrong base.
func (p *Proxy) resolveDelta(e *entry, ev *push.Event) ([]byte, bool) {
	e.mu.RLock()
	base := e.body
	baseDigest := e.bodyDigest
	e.mu.RUnlock()
	if baseDigest == "" {
		baseDigest = push.DigestOf(base)
	}
	if baseDigest != ev.BaseDigest {
		p.pushDeltaBaseMiss.Add(1)
		return nil, false
	}
	full, err := push.ApplyDelta(ev.DeltaCodec, base, ev.Body, 0)
	if err != nil || push.DigestOf(full) != ev.Digest {
		p.pushDeltaBaseMiss.Add(1)
		return nil, false
	}
	return full, true
}

// applyPushedToDisk lands a pushed payload on the disk record of an
// object that is no longer (or not yet again) resident — a CLOCK
// demotion whose record survives in the persistent tier. Without this,
// every push for a demoted object is dropped and the record ages
// toward a promotion poll; with it, the record tracks the origin and
// the next promotion's conditional fetch answers 304 against fresh
// state. A delta frame is applied against the disk body, whose digest
// is computed from the bytes actually read back (the content-addressed
// store verifies them against the record on every Get) — the same
// base-authority rule as the resident path. It reports whether the
// event was fully handled (installed, or recognized as a duplicate).
func (p *Proxy) applyPushedToDisk(ev push.Event) bool {
	if !p.cfg.PushValues || p.disk == nil || !ev.HasBody {
		return false
	}
	ck := ev.Key
	if u, err := url.Parse(ev.Key); err == nil {
		ck = canonicalKey(u)
	}
	rec, base, ok := p.disk.Get(ck)
	if !ok {
		return false
	}
	if rec.HasLastMod && !ev.ModTime.IsZero() && !ev.ModTime.After(rec.LastMod) {
		return true // duplicate: the record already carries this version
	}
	body := ev.Body
	if ev.BaseDigest != "" && ev.DeltaCodec != 0 {
		if push.DigestOf(base) != ev.BaseDigest {
			p.pushDeltaBaseMiss.Add(1)
			return false
		}
		full, err := push.ApplyDelta(ev.DeltaCodec, base, ev.Body, 0)
		if err != nil || push.DigestOf(full) != ev.Digest {
			p.pushDeltaBaseMiss.Add(1)
			return false
		}
		body = full
		p.pushDeltaApplied.Add(1)
	} else if push.DigestOf(ev.Body) != ev.Digest {
		return false
	}
	rec.ValidatedAt = p.cfg.Clock()
	if ev.ContentType != "" {
		rec.ContentType = ev.ContentType
	}
	if !ev.ModTime.IsZero() {
		rec.LastMod, rec.HasLastMod = ev.ModTime, true
	}
	p.disk.Put(rec, body)
	p.pushDiskApplied.Add(1)
	return true
}

// eventKeyResolvesTo reports whether an origin invalidation event for
// the object cached under key would resolve back to that entry through
// handlePushEvent's lookup. The origin publishes events at path
// granularity with the decoded path as the key (its objects are keyed
// by r.URL.Path), so a cache key carrying a query string can never
// match one, and a key whose decoded path does not canonicalize back
// to it (e.g. a path containing a literal '?', cached as %3F) is
// unreachable too. Entries failing this test are marked unpushable and
// keep pure-polling freshness — stretching them would widen their Δt
// bound with nothing covering the gap.
func (p *Proxy) eventKeyResolvesTo(key string) bool {
	if strings.Contains(key, "?") {
		return false // canonical keys carry queries after a raw '?'
	}
	decoded, err := url.PathUnescape(key)
	if err != nil {
		return false
	}
	if decoded == key {
		return true // verbatim store lookup finds the entry
	}
	u, err := url.Parse(decoded)
	if err != nil {
		return false
	}
	return canonicalKey(u) == key
}

// handlePushConnect marks the channel healthy. A resumed connection
// whose gap outran the origin's replay buffer (hello.Reset) ran blind
// while stretched, so the catch-up sweep revalidates on the paper-mode
// schedule before stretching resumes.
func (p *Proxy) handlePushConnect(hello push.Event, resumed bool) {
	p.pushHealthy.Store(true)
	if hello.Reset && resumed {
		// Events were irrecoverably missed (a reconnect gap that outran
		// the upstream's replay buffer, or a mid-stream Reset from a
		// relaying upstream that lost its own upstream): revalidate on
		// the paper-mode schedule, and hand the hole on to any children
		// of this proxy — everything relayed before this instant is
		// suspect for them exactly as the upstream's stream is for us.
		p.fallbackSweep()
		p.relayReset()
	}
}

// handlePushFrameLoss reconciles a dropped stream line (oversized or
// undecodable): its content is unknown — possibly an update this proxy
// and its children will never see, possibly a mid-stream Reset — so the
// catch-up sweep restores paper-mode schedules and the relay announces
// the hole downstream, exactly as a Reset would. The channel stays
// healthy: subsequent polls re-stretch, and a well-behaved upstream
// never triggers this at all.
func (p *Proxy) handlePushFrameLoss() {
	p.fallbackSweep()
	p.relayReset()
}

// handlePushDisconnect falls back to pure polling: stretching stops and
// the catch-up sweep bounds the staleness the dead channel left behind.
// Children are told too (mid-stream Reset): while this proxy is blind,
// its relay announces nothing, so their stretched schedules must not
// outlive the guarantee that backed them.
func (p *Proxy) handlePushDisconnect(error) {
	if p.pushHealthy.Swap(false) {
		p.pushFallbacks.Add(1)
		p.fallbackSweep()
		p.relayReset()
	}
}

// fallbackSweep pulls every schedule entry whose poll was stretched
// beyond its unstretched instant back to that instant (or to now, when
// it already passed). After the sweep the schedule is exactly what pure
// paper-mode polling would have produced, so the Δt guarantee holds
// with no help from the channel.
//
// The whole sweep runs inside one schedMu critical section, paired with
// rescheduleHybrid making its stretch decision under the same lock:
// pushHealthy is cleared before the sweep acquires schedMu, so a racing
// poll either reschedules first (its item is on the heap and gets
// swept) or takes the lock after the sweep and reads the channel as
// unhealthy (no stretch). Entries that are mid-poll (item == nil)
// reschedule through the same gate when they finish. The single hold is
// a latency spike proportional to the cache size, but a channel death
// is rare and correctness of the Δt bound wins.
func (p *Proxy) fallbackSweep() {
	if p.cfg.PushStretch <= 1 {
		// Stretching disabled: every baseNextAt equals its nextAt, so
		// the sweep is a guaranteed no-op — skip the O(cache) walk and
		// the schedMu hold it would cost on every disconnect.
		return
	}
	now := p.cfg.Clock()
	var batch []*entry
	for i := range p.store.shards {
		sh := &p.store.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			batch = append(batch, e)
		}
		sh.mu.RUnlock()
	}
	pulled := false
	p.schedMu.Lock()
	for _, e := range batch {
		if e.item == nil || !e.baseNextAt.Before(e.nextAt) {
			continue // unscheduled (queued, in flight, or evicted) or unstretched
		}
		at := e.baseNextAt
		if at.Before(now) {
			at = now
		}
		e.nextAt = at
		e.baseNextAt = at
		p.schedule.Reschedule(e.item, at)
		pulled = true
	}
	p.schedMu.Unlock()
	if pulled {
		p.kick()
	}
}

// stretchTTR widens e's regular TTR while the push channel is healthy,
// clamped to the TTR upper bound. With the channel down, stretching
// disabled, or an object the origin can never announce (a query-bearing
// cache key — events are path-granular — or a key exceeding the wire
// frame limit) the TTR passes through untouched — such objects keep
// pure-polling freshness.
func (p *Proxy) stretchTTR(e *entry, ttr time.Duration) time.Duration {
	if p.sub == nil || p.cfg.PushStretch <= 1 || e.unpushable || !p.pushHealthy.Load() {
		return ttr
	}
	if p.cfg.PushInterest && !p.sub.DeclaredInterest().Matches(e.key, e.group) {
		// The live upstream declaration does not cover this object: its
		// updates are filtered away before they reach us, so the channel
		// cannot carry its freshness burden. Pure-polling TTR until a
		// bounce widens the declaration. Checked dynamically — not
		// marked at admission — because the declaration this object
		// missed is itself refreshed by the admission-time bounce.
		// Sound against a racing reconnect: stretching requires
		// pushHealthy, which flips only after the attempt's declaration
		// (stored before its request goes out) is in place.
		return ttr
	}
	s := time.Duration(float64(ttr) * p.cfg.PushStretch)
	if max := p.maxBackoff(); s > max {
		s = max
	}
	if s < ttr {
		s = ttr
	}
	return s
}

// PushStats reports the state of the invalidation channel.
type PushStats struct {
	// Enabled reports whether the proxy was configured with a push URL.
	Enabled bool
	// Connected reports whether the channel is currently healthy
	// (stretched polling in effect).
	Connected bool
	// Events counts update notifications received.
	Events uint64
	// Polls counts pushed jobs enqueued (coalesced bursts enqueue one).
	// With PushValues each job first tries to install the event's
	// payload and only polls when that fails.
	Polls uint64
	// Dropped counts events for objects that were not resident.
	Dropped uint64
	// ValueApplied counts pushed payloads installed directly — one
	// message, zero origin polls. ValueFallbacks counts pushed jobs
	// that degraded to a confirmation poll while value application was
	// enabled (digest mismatch, missing or over-cap payload, byte-budget
	// refusal).
	ValueApplied   uint64
	ValueFallbacks uint64
	// DeltaApplied counts pushed delta frames reconstructed, verified,
	// and installed (resident or disk tier). DeltaBaseMisses counts
	// deltas refused because the advertised base digest did not match
	// the body actually held (forged, stale, or raced base) — each one
	// degraded down the ladder instead of installing blind.
	// DeltaRebased counts relay publications that carried a delta form
	// for this proxy's own downstream (the upstream's delta reused when
	// the base matched, or one computed locally after a poll).
	// DiskApplied counts pushed payloads landed directly on a demoted
	// object's disk record while nothing was resident.
	DeltaApplied    uint64
	DeltaBaseMisses uint64
	DeltaRebased    uint64
	DiskApplied     uint64
	// ChunksAssembled counts chunked bodies the subscriber reassembled
	// and delivered whole; ChunksBroken counts chunk sets it abandoned
	// (hole, out-of-order frame, over-budget reassembly, or terminal
	// digest mismatch), each degraded to a confirmation poll.
	ChunksAssembled uint64
	ChunksBroken    uint64
	// Fallbacks counts healthy→disconnected transitions (each one ran a
	// catch-up sweep).
	Fallbacks uint64
	// Connects counts successful stream establishments (a mid-stream
	// Reset reconciliation is not one: the stream stayed up).
	Connects uint64
	// Bounces counts deliberate stream drops forcing an interest
	// renegotiation (an admission or a downstream subscriber outside
	// the live declaration).
	Bounces uint64
	// Resets counts mid-stream hello/Reset frames received (a relaying
	// upstream announcing a hole without dropping the connection); each
	// one ran the same reconciliation as a Reset at connect time.
	Resets uint64
	// SkippedFrames counts oversized stream lines the subscriber
	// dropped in place of dying and livelocking on reconnect replay.
	SkippedFrames uint64
	// LastSeq is the last fully processed stream position: the highest
	// of the last event handled and the stream position heartbeats have
	// advanced past frames the upstream withheld under this proxy's
	// declared interest (a filtered frame is processed by definition —
	// nobody here wanted it).
	LastSeq uint64
	// LastFrameAt is the wall-clock instant the last stream frame of
	// any kind arrived (zero before the first); HeartbeatTimeout is the
	// resolved watchdog interval. Together they bound how stale a
	// Connected reading can be — a health probe flags a connected
	// channel whose LastFrameAt trails now by more than the timeout.
	LastFrameAt      time.Time
	HeartbeatTimeout time.Duration
}

// PushStats returns the invalidation-channel counters.
func (p *Proxy) PushStats() PushStats {
	st := PushStats{
		Enabled:         p.sub != nil,
		Connected:       p.pushHealthy.Load(),
		Events:          p.pushEvents.Load(),
		Polls:           p.pushPolls.Load(),
		Dropped:         p.pushDropped.Load(),
		Fallbacks:       p.pushFallbacks.Load(),
		ValueApplied:    p.pushApplied.Load(),
		ValueFallbacks:  p.pushValueFallback.Load(),
		DeltaApplied:    p.pushDeltaApplied.Load(),
		DeltaBaseMisses: p.pushDeltaBaseMiss.Load(),
		DeltaRebased:    p.pushDeltaRebased.Load(),
		DiskApplied:     p.pushDiskApplied.Load(),
		LastSeq:         p.pushSeq.Load(),
	}
	if p.sub != nil {
		st.Connects = p.sub.Connects()
		st.ChunksAssembled = p.sub.ChunksAssembled()
		st.ChunksBroken = p.sub.ChunksBroken()
		st.Bounces = p.sub.Bounces()
		st.Resets = p.sub.Resets()
		st.SkippedFrames = p.sub.SkippedFrames()
		st.LastFrameAt = p.sub.LastFrameAt()
		st.HeartbeatTimeout = p.sub.HeartbeatTimeout()
		// An event's seq is stored after its poll is enqueued, and the
		// subscriber advances only after the handler returns, so taking
		// the max preserves the quiescence invariant "LastSeq advances
		// only once the matching work is in flight".
		if ls := p.sub.LastSeq(); ls > st.LastSeq {
			st.LastSeq = ls
		}
	}
	return st
}
