package webproxy

import (
	"sync"
	"sync/atomic"
)

// store is the sharded object cache. Keys are canonical cache keys
// (path plus sorted query); each key maps to one shard by FNV-1a hash,
// and each shard has its own RWMutex, so concurrent hits on different
// objects never contend on a global lock.
type store struct {
	mask   uint32
	shards []storeShard
	count  atomic.Int64
}

type storeShard struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// maxShards bounds Config.Shards (2^20 map shards far exceeds any
// plausible contention win and keeps nextPow2 and the uint32 shard mask
// clear of overflow).
const maxShards = 1 << 20

// newStore returns a store with n shards; n must be a power of two.
func newStore(n int) *store {
	s := &store{mask: uint32(n - 1), shards: make([]storeShard, n)}
	for i := range s.shards {
		s.shards[i].entries = make(map[string]*entry)
	}
	return s
}

func (s *store) shardFor(key string) *storeShard {
	return &s.shards[fnv32(key)&s.mask]
}

// get returns the entry for key, or nil.
func (s *store) get(key string) *entry {
	sh := s.shardFor(key)
	sh.mu.RLock()
	e := sh.entries[key]
	sh.mu.RUnlock()
	return e
}

// put inserts e unless key is already present or the store already
// holds max objects (max < 0 disables the cap). The object count is
// reserved atomically before the insert, so concurrent admissions can
// never overshoot the cap. It returns the entry resident after the
// call, whether e was the one inserted, and whether the cap refused it.
func (s *store) put(key string, e *entry, max int) (resident *entry, inserted, capped bool) {
	if max >= 0 {
		for {
			n := s.count.Load()
			if n >= int64(max) {
				if existing := s.get(key); existing != nil {
					return existing, false, false
				}
				return e, false, true
			}
			if s.count.CompareAndSwap(n, n+1) {
				break
			}
		}
	} else {
		s.count.Add(1)
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	if existing, ok := sh.entries[key]; ok {
		sh.mu.Unlock()
		s.count.Add(-1) // release the reservation
		return existing, false, false
	}
	sh.entries[key] = e
	sh.mu.Unlock()
	return e, true, false
}

// len returns the number of cached objects.
func (s *store) len() int {
	return int(s.count.Load())
}

// fnv32 is the 32-bit FNV-1a hash.
func fnv32(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// nextPow2 rounds n up to the nearest power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
