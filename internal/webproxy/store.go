package webproxy

import (
	"sync"
	"sync/atomic"
)

// store is the sharded object cache. Keys are canonical cache keys
// (path plus sorted query); each key maps to one shard by FNV-1a hash,
// and each shard has its own RWMutex, so concurrent hits on different
// objects never contend on a global lock.
//
// Each shard doubles as a CLOCK (second-chance) replacement domain: the
// residents of a shard form a ring swept by a per-shard hand. Hits mark
// an entry's access bit with a lock-free atomic store; the sweep clears
// the bit on first encounter and evicts on the second, so recently hit
// objects survive while churned-through ones are reclaimed. Members of
// mutual-consistency groups carry extra second chances (see groupLives):
// evicting one member silently weakens the whole group's mutual
// guarantee, so the policy prefers ungrouped victims of equal heat.
//
// The store also keeps a byte ledger (bytes) alongside the object count,
// so replacement can be driven by a memory budget (Config.MaxBytes) as
// well as an object cap.
type store struct {
	mask   uint32
	shards []storeShard
	count  atomic.Int64
	bytes  atomic.Int64
}

type storeShard struct {
	mu      sync.RWMutex
	entries map[string]*entry
	ring    []*entry // CLOCK ring: this shard's residents in admission order
	hand    int      // next sweep position in ring
}

// maxShards bounds Config.Shards (2^20 map shards far exceeds any
// plausible contention win and keeps nextPow2 and the uint32 shard mask
// clear of overflow).
const maxShards = 1 << 20

// groupLives is the number of extra second chances a mutual-consistency
// group member gets in the victim scan beyond the ordinary CLOCK access
// bit. Evicting a group member breaks the group's mutual guarantee for
// the survivors, so grouped entries are only reclaimed once the sweep
// has passed them groupLives times without a hit.
const groupLives = 2

// entryOverhead approximates the per-object bookkeeping bytes charged to
// the ledger beyond key and body: the entry struct, its policy state,
// the map cell, the ring slot, and the schedule item.
const entryOverhead = 512

// entrySize is the resident size charged to the byte ledger for an
// object with the given key and body.
func entrySize(key string, body []byte) int64 {
	return int64(len(key)) + int64(len(body)) + entryOverhead
}

// newStore returns a store with n shards; n must be a power of two.
func newStore(n int) *store {
	s := &store{mask: uint32(n - 1), shards: make([]storeShard, n)}
	for i := range s.shards {
		s.shards[i].entries = make(map[string]*entry)
	}
	return s
}

func (s *store) shardFor(key string) *storeShard {
	return &s.shards[s.shardIndex(key)]
}

func (s *store) shardIndex(key string) uint32 {
	return fnv32(key) & s.mask
}

// get returns the entry for key, or nil.
func (s *store) get(key string) *entry {
	sh := s.shardFor(key)
	sh.mu.RLock()
	e := sh.entries[key]
	sh.mu.RUnlock()
	return e
}

// put inserts e unless key is already present, enforcing the object cap
// and byte budget (negative disables either; evict selects the policy).
//
// With evict=false (EvictRefuse) the store keeps its legacy behavior:
// the object count is reserved atomically before the insert, so
// concurrent admissions can never overshoot the cap, and an insert at
// capacity is refused (capped=true) — the caller serves e uncached.
//
// With evict=true (EvictClock) the insert always succeeds (except for a
// single object larger than the whole byte budget, which is refused)
// and put then reclaims residents via the CLOCK victim scan until both
// budgets hold again, returning the victims for the caller to unwind
// (deschedule, detach from group). Concurrent admissions may transiently
// overshoot a budget; each one evicts its own overshoot before
// returning, so the store is back within budget as soon as the
// concurrent puts drain. Victims are already marked evicted and removed
// from their shard when put returns.
func (s *store) put(key string, e *entry, maxObjects int, maxBytes int64, evict bool) (resident *entry, inserted bool, victims []*entry, capped bool) {
	size := e.size.Load()
	if evict && maxBytes >= 0 && size > maxBytes {
		// The object alone overflows the byte budget: caching it would
		// evict the entire store and still not fit.
		return e, false, nil, true
	}
	if !evict {
		if maxObjects >= 0 {
			for {
				n := s.count.Load()
				if n >= int64(maxObjects) {
					if existing := s.get(key); existing != nil {
						return existing, false, nil, false
					}
					return e, false, nil, true
				}
				if s.count.CompareAndSwap(n, n+1) {
					break
				}
			}
		} else {
			s.count.Add(1)
		}
		if maxBytes >= 0 {
			if s.bytes.Add(size) > maxBytes {
				s.bytes.Add(-size)
				s.count.Add(-1)
				if existing := s.get(key); existing != nil {
					return existing, false, nil, false
				}
				return e, false, nil, true
			}
		} else {
			s.bytes.Add(size)
		}
	}

	home := s.shardIndex(key)
	sh := &s.shards[home]
	sh.mu.Lock()
	if existing, ok := sh.entries[key]; ok {
		sh.mu.Unlock()
		if !evict {
			s.count.Add(-1) // release the reservations
			s.bytes.Add(-size)
		}
		return existing, false, nil, false
	}
	sh.entries[key] = e
	e.ringIdx = len(sh.ring)
	sh.ring = append(sh.ring, e)
	// A fresh admission starts with its access bit set (one grace sweep)
	// and, for group members, its extra lives intact.
	e.refbit.Store(true)
	if e.group != "" {
		e.lives = groupLives
	}
	if evict {
		s.count.Add(1)
		s.bytes.Add(size)
	}
	sh.mu.Unlock()

	if evict {
		victims = s.shrink(maxObjects, maxBytes, home, e)
	}
	return e, true, victims, false
}

// shrink reclaims residents via the CLOCK sweep until both budgets hold
// again, never selecting protect. put calls it after an admission;
// the refresh engine calls it when a refreshed body grew the ledger
// past MaxBytes. The returned victims must be unwound by the caller.
func (s *store) shrink(maxObjects int, maxBytes int64, start uint32, protect *entry) []*entry {
	var victims []*entry
	for s.overBudget(maxObjects, maxBytes) {
		v := s.evictOne(start, protect)
		if v == nil {
			break
		}
		victims = append(victims, v)
	}
	return victims
}

// overBudget reports whether either replacement budget is exceeded.
func (s *store) overBudget(maxObjects int, maxBytes int64) bool {
	if maxObjects >= 0 && s.count.Load() > int64(maxObjects) {
		return true
	}
	if maxBytes >= 0 && s.bytes.Load() > maxBytes {
		return true
	}
	return false
}

// evictOne reclaims one resident via the CLOCK sweep, preferring the
// shard at index start (the inserting entry's home shard) and probing
// subsequent shards when it holds no evictable resident. protect is
// never selected (a put must not evict the object it just admitted).
// It returns nil when no victim exists anywhere.
func (s *store) evictOne(start uint32, protect *entry) *entry {
	n := uint32(len(s.shards))
	for off := uint32(0); off < n; off++ {
		sh := &s.shards[(start+off)&s.mask]
		sh.mu.Lock()
		v := sh.clockVictim(protect)
		if v != nil {
			s.count.Add(-1)
			s.bytes.Add(-v.size.Load())
		}
		sh.mu.Unlock()
		if v != nil {
			return v
		}
	}
	return nil
}

// clockVictim runs the second-chance sweep over the shard's ring and
// removes and returns the victim, or nil when the shard has no
// evictable resident. The caller holds sh.mu.
//
// Each encounter costs an entry one asset: first its access bit, then
// its extra lives (group members), and with nothing left it is evicted.
// The sweep is bounded: after at most (groupLives+2) passes every
// entry's assets are exhausted, so a ring with any candidate besides
// protect always yields a victim.
func (sh *storeShard) clockVictim(protect *entry) *entry {
	candidates := len(sh.ring)
	if candidates == 0 || (candidates == 1 && sh.ring[0] == protect) {
		return nil
	}
	limit := candidates * (groupLives + 2)
	for i := 0; i < limit; i++ {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		c := sh.ring[sh.hand]
		if c == protect {
			sh.hand++
			continue
		}
		if c.refbit.CompareAndSwap(true, false) {
			// Second chance: accessed since the last sweep. A live
			// group member also gets its penalty shield back — the
			// extra lives protect warm groups durably, not just for
			// groupLives sweeps after admission.
			if c.group != "" {
				c.lives = groupLives
			}
			sh.hand++
			continue
		}
		if c.lives > 0 {
			c.lives-- // group-membership penalty not yet exhausted
			sh.hand++
			continue
		}
		sh.removeLocked(c)
		return c
	}
	return nil
}

// removeLocked unlinks e from the shard map and ring and marks it
// evicted. The caller holds sh.mu and adjusts the store ledgers.
func (sh *storeShard) removeLocked(e *entry) {
	delete(sh.entries, e.key)
	last := len(sh.ring) - 1
	if e.ringIdx != last {
		moved := sh.ring[last]
		sh.ring[e.ringIdx] = moved
		moved.ringIdx = e.ringIdx
	}
	sh.ring[last] = nil
	sh.ring = sh.ring[:last]
	if sh.hand > last {
		sh.hand = 0
	}
	e.ringIdx = -1
	e.evicted.Store(true)
}

// removeEntry evicts exactly e (admin or oversize eviction), reporting
// whether it was still resident. The identity check means a caller
// holding a stale reference can never displace a re-admitted successor
// under the same key.
func (s *store) removeEntry(e *entry) bool {
	sh := s.shardFor(e.key)
	sh.mu.Lock()
	if sh.entries[e.key] != e {
		sh.mu.Unlock()
		return false
	}
	sh.removeLocked(e)
	s.count.Add(-1)
	s.bytes.Add(-e.size.Load())
	sh.mu.Unlock()
	return true
}

// resize re-charges e's resident size after a refresh replaced its body.
// Eviction reads the size and unlinks the entry under the same shard
// lock, so the ledger never double-counts an entry resized and evicted
// concurrently.
func (s *store) resize(e *entry, size int64) {
	sh := s.shardFor(e.key)
	sh.mu.Lock()
	if e.evicted.Load() {
		sh.mu.Unlock()
		return
	}
	old := e.size.Swap(size)
	s.bytes.Add(size - old)
	sh.mu.Unlock()
}

// len returns the number of cached objects.
func (s *store) len() int {
	return int(s.count.Load())
}

// residentBytes returns the ledger total charged for cached objects.
func (s *store) residentBytes() int64 {
	return s.bytes.Load()
}

// fnv32 is the 32-bit FNV-1a hash.
func fnv32(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// nextPow2 rounds n up to the nearest power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
