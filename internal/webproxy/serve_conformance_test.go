package webproxy

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// This file is the HTTP-conformance battery for the serve path (RFC
// 9110): HEAD support on cached objects, Allow headers on genuine 405s,
// and the generic 502 whose upstream detail lives on the operator
// surface instead of the client response.

// TestHEADServesCachedHeadersWithoutBody: a HEAD on a cached object must
// answer with the entry's headers — Content-Type, Content-Length,
// Last-Modified, X-Cache: HIT — and no body, instead of the 405 the
// proxy used to return.
func TestHEADServesCachedHeadersWithoutBody(t *testing.T) {
	s := newLiveSetup(t, nil, Config{})
	s.origin.Set("/page", []byte("hello head"), "text/plain")
	s.get(t, "/page") // warm the cache

	resp, err := http.Head(s.proxySrv.URL + "/page")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD on cached object = %d", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Errorf("HEAD carried %d body bytes: %q", len(body), body)
	}
	if got := resp.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("X-Cache = %q, want HIT", got)
	}
	if got := resp.Header.Get("Content-Type"); got != "text/plain" {
		t.Errorf("Content-Type = %q", got)
	}
	if got := resp.Header.Get("Content-Length"); got != strconv.Itoa(len("hello head")) {
		t.Errorf("Content-Length = %q, want the cached body's length", got)
	}
	if resp.Header.Get("Last-Modified") == "" {
		t.Error("HEAD response lost Last-Modified")
	}
}

// TestHEADOnColdObjectAdmits: a HEAD miss runs the normal admission path
// (the object becomes resident) but still returns no body.
func TestHEADOnColdObjectAdmits(t *testing.T) {
	s := newLiveSetup(t, nil, Config{})
	s.origin.Set("/cold", []byte("cold body"), "text/plain")

	resp, err := http.Head(s.proxySrv.URL + "/cold")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Fatalf("HEAD miss = %d with %d body bytes", resp.StatusCode, len(body))
	}
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Errorf("X-Cache = %q, want MISS", resp.Header.Get("X-Cache"))
	}
	// The admission was real: a follow-up GET is a hit.
	_, hdr := s.get(t, "/cold")
	if hdr.Get("X-Cache") != "HIT" {
		t.Errorf("GET after HEAD admission X-Cache = %q, want HIT", hdr.Get("X-Cache"))
	}
}

// TestMethodNotAllowedSetsAllow: genuine 405s carry the Allow header, on
// the proxy and on the origin's serve path alike.
func TestMethodNotAllowedSetsAllow(t *testing.T) {
	s := newLiveSetup(t, nil, Config{})
	s.origin.Set("/page", []byte("x"), "text/plain")

	for name, target := range map[string]string{
		"proxy":  s.proxySrv.URL + "/page",
		"origin": s.originSrv.URL + "/page",
	} {
		resp, err := http.Post(target, "text/plain", strings.NewReader("nope"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s POST = %d, want 405", name, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
			t.Errorf("%s 405 Allow = %q, want \"GET, HEAD\"", name, allow)
		}
	}
}

// TestBadGatewayBodyIsGeneric: a failed upstream fetch must not leak the
// raw error string to the client; the detail is recorded on
// UpstreamStatus (and counted on CacheStats) for the operator surface.
func TestBadGatewayBodyIsGeneric(t *testing.T) {
	s := newLiveSetup(t, nil, Config{})
	s.originSrv.CloseClientConnections()
	s.originSrv.Close()

	resp, err := http.Get(s.proxySrv.URL + "/unreachable")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("miss against dead origin = %d", resp.StatusCode)
	}
	if strings.TrimSpace(string(body)) != "upstream fetch failed" {
		t.Errorf("502 body = %q, want the generic message only", body)
	}

	us := s.proxy.UpstreamStatus()
	if us.Errors == 0 {
		t.Error("UpstreamStatus.Errors not incremented")
	}
	if us.LastError == "" {
		t.Error("UpstreamStatus.LastError empty; the detail must live on the operator surface")
	}
	if us.LastErrorAt.IsZero() || !us.LastErrorAt.After(us.LastOKAt) {
		t.Errorf("UpstreamStatus times: err at %v, ok at %v", us.LastErrorAt, us.LastOKAt)
	}
	if cs := s.proxy.CacheStats(); cs.UpstreamErrors != us.Errors {
		t.Errorf("CacheStats.UpstreamErrors = %d, UpstreamStatus.Errors = %d", cs.UpstreamErrors, us.Errors)
	}
}
