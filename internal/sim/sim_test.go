package sim

import (
	"testing"
	"time"

	"broadway/internal/simtime"
)

func TestRunFiresInOrder(t *testing.T) {
	e := New(0)
	var got []string
	rec := func(s string) Event {
		return EventFunc(func(*Engine) { got = append(got, s) })
	}
	e.ScheduleAt(simtime.At(3*time.Second), rec("c"))
	e.ScheduleAt(simtime.At(1*time.Second), rec("a"))
	e.ScheduleAt(simtime.At(2*time.Second), rec("b"))

	if err := e.Run(simtime.At(time.Minute)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Processed() != 3 {
		t.Errorf("Processed = %d", e.Processed())
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	e := New(0)
	var at simtime.Time
	e.ScheduleAt(simtime.At(42*time.Second), EventFunc(func(e *Engine) {
		at = e.Now()
	}))
	if err := e.Run(simtime.At(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if at != simtime.At(42*time.Second) {
		t.Errorf("event saw Now=%v", at)
	}
	if e.Now() != simtime.At(time.Minute) {
		t.Errorf("clock after Run = %v, want horizon", e.Now())
	}
}

func TestHorizonInclusive(t *testing.T) {
	e := New(0)
	fired := 0
	e.ScheduleAt(simtime.At(time.Minute), EventFunc(func(*Engine) { fired++ }))
	e.ScheduleAt(simtime.At(time.Minute+time.Nanosecond), EventFunc(func(*Engine) { fired++ }))
	if err := e.Run(simtime.At(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("fired = %d, want exactly the event at the horizon", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
}

func TestEventsScheduleFollowUps(t *testing.T) {
	e := New(0)
	count := 0
	var tick Event
	tick = EventFunc(func(e *Engine) {
		count++
		e.ScheduleAfter(time.Second, tick)
	})
	e.ScheduleAt(simtime.Epoch, tick)
	if err := e.Run(simtime.At(10*time.Second - time.Nanosecond)); err != nil {
		t.Fatal(err)
	}
	if count != 10 { // fires at 0s..9s
		t.Errorf("count = %d, want 10", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New(0)
	e.ScheduleAt(simtime.At(5*time.Second), EventFunc(func(e *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.ScheduleAt(simtime.At(time.Second), EventFunc(func(*Engine) {}))
	}))
	if err := e.Run(simtime.At(time.Minute)); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleAfterNegativeClamps(t *testing.T) {
	e := New(0)
	fired := false
	e.ScheduleAfter(-time.Hour, EventFunc(func(*Engine) { fired = true }))
	if err := e.Run(simtime.Epoch); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("negative delay should fire immediately")
	}
}

func TestAfterLatency(t *testing.T) {
	e := New(250 * time.Millisecond)
	var at simtime.Time
	e.AfterLatency(EventFunc(func(e *Engine) { at = e.Now() }))
	if err := e.Run(simtime.At(time.Second)); err != nil {
		t.Fatal(err)
	}
	if at != simtime.At(250*time.Millisecond) {
		t.Errorf("latency event at %v", at)
	}
}

func TestCancel(t *testing.T) {
	e := New(0)
	fired := false
	h := e.ScheduleAt(simtime.At(time.Second), EventFunc(func(*Engine) { fired = true }))
	if !e.Cancel(h) {
		t.Fatal("Cancel of pending event must succeed")
	}
	if e.Cancel(h) {
		t.Fatal("double Cancel must fail")
	}
	if err := e.Run(simtime.At(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestStop(t *testing.T) {
	e := New(0)
	count := 0
	for i := 1; i <= 5; i++ {
		e.ScheduleAt(simtime.At(time.Duration(i)*time.Second), EventFunc(func(e *Engine) {
			count++
			if count == 2 {
				e.Stop()
			}
		}))
	}
	err := e.Run(simtime.At(time.Minute))
	if err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
	// A subsequent Run resumes processing.
	if err := e.Run(simtime.At(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("count after resume = %d, want 5", count)
	}
}

func TestStep(t *testing.T) {
	e := New(0)
	count := 0
	e.ScheduleAt(simtime.At(time.Second), EventFunc(func(*Engine) { count++ }))
	e.ScheduleAt(simtime.At(2*time.Second), EventFunc(func(*Engine) { count++ }))
	if !e.Step() || count != 1 {
		t.Fatal("first Step failed")
	}
	if e.Now() != simtime.At(time.Second) {
		t.Errorf("Now = %v", e.Now())
	}
	if !e.Step() || count != 2 {
		t.Fatal("second Step failed")
	}
	if e.Step() {
		t.Fatal("Step on empty queue must return false")
	}
}

func TestRunFor(t *testing.T) {
	e := New(0)
	fired := 0
	e.ScheduleAt(simtime.At(30*time.Second), EventFunc(func(*Engine) { fired++ }))
	e.ScheduleAt(simtime.At(90*time.Second), EventFunc(func(*Engine) { fired++ }))
	if err := e.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("fired = %d after first minute", fired)
	}
	if err := e.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Errorf("fired = %d after second minute", fired)
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() []int {
		e := New(0)
		var order []int
		for i := 0; i < 100; i++ {
			i := i
			// Many events at identical instants: FIFO tie-break must hold.
			e.ScheduleAt(simtime.At(time.Duration(i%7)*time.Second), EventFunc(func(*Engine) {
				order = append(order, i)
			}))
		}
		if err := e.Run(simtime.At(time.Minute)); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
