// Package sim provides the discrete-event simulation engine used by the
// proxy/origin evaluation. The engine mirrors the paper's methodology
// (§6.1.1): a single logical clock, events processed in timestamp order,
// and a fixed network latency between proxy and servers.
//
// The engine is deliberately single-goroutine: determinism is a design
// requirement so that every experiment is exactly reproducible from its
// seed. All concurrency in this repository lives at the edges (the live
// HTTP proxy in internal/webproxy), never inside the simulator.
package sim

import (
	"errors"
	"fmt"
	"time"

	"broadway/internal/eventq"
	"broadway/internal/simtime"
)

// Event is a unit of work scheduled on the engine.
type Event interface {
	// Fire runs the event at its scheduled instant. The engine passes
	// itself so events can schedule follow-up work.
	Fire(e *Engine)
}

// EventFunc adapts a plain function to the Event interface.
type EventFunc func(e *Engine)

// Fire implements Event.
func (f EventFunc) Fire(e *Engine) { f(e) }

var _ Event = (EventFunc)(nil)

// ErrStopped is returned by Run when the simulation was halted via Stop
// before the horizon or event exhaustion.
var ErrStopped = errors.New("sim: stopped")

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	item *eventq.Item
}

// Engine is a deterministic discrete-event scheduler. The zero value is
// ready to use, with the clock at the simulation epoch.
type Engine struct {
	queue   eventq.Queue
	now     simtime.Time
	stopped bool

	// Latency is the fixed one-way network latency applied by helpers
	// such as AfterLatency. The paper's simulator assumes a fixed
	// latency; zero is a valid choice and the default.
	Latency time.Duration

	processed uint64
}

// New returns an engine with the given fixed network latency.
func New(latency time.Duration) *Engine {
	return &Engine{Latency: latency}
}

// Now returns the current simulated instant.
func (e *Engine) Now() simtime.Time { return e.now }

// Processed returns the number of events fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return e.queue.Len() }

// ScheduleAt schedules ev to fire at the absolute instant at. Scheduling
// in the past (before Now) panics: it always indicates a logic error and
// would silently corrupt causality if allowed.
func (e *Engine) ScheduleAt(at simtime.Time, ev Event) Handle {
	if at.Before(e.now) {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	return Handle{item: e.queue.Push(at, ev)}
}

// ScheduleAfter schedules ev to fire d after the current instant.
// Negative d is treated as zero.
func (e *Engine) ScheduleAfter(d time.Duration, ev Event) Handle {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now.Add(d), ev)
}

// AfterLatency schedules ev one network latency from now. It models a
// message that must cross the network before its effect is visible.
func (e *Engine) AfterLatency(ev Event) Handle {
	return e.ScheduleAfter(e.Latency, ev)
}

// Cancel removes a previously scheduled event. It reports whether the
// event was still pending.
func (e *Engine) Cancel(h Handle) bool { return e.queue.Remove(h.item) }

// Stop halts the run loop after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events in timestamp order until the queue is empty or the
// next event lies beyond the horizon. Events exactly at the horizon still
// fire ([epoch, horizon] inclusive); the clock never advances past it.
// Run returns ErrStopped if Stop was called, else nil.
func (e *Engine) Run(horizon simtime.Time) error {
	e.stopped = false
	for {
		if e.stopped {
			return ErrStopped
		}
		head := e.queue.Peek()
		if head == nil || head.At.After(horizon) {
			e.now = simtime.Max(e.now, horizon)
			return nil
		}
		it := e.queue.Pop()
		e.now = it.At
		e.processed++
		it.Payload.(Event).Fire(e)
	}
}

// RunFor is shorthand for Run(Now().Add(d)).
func (e *Engine) RunFor(d time.Duration) error {
	return e.Run(e.now.Add(d))
}

// Step fires exactly one event (the earliest pending one) and reports
// whether an event was fired. It is primarily useful in tests.
func (e *Engine) Step() bool {
	it := e.queue.Pop()
	if it == nil {
		return false
	}
	e.now = it.At
	e.processed++
	it.Payload.(Event).Fire(e)
	return true
}
