// Package eventq implements the deterministic priority queue that orders
// events in the discrete-event simulator. Events are dequeued in
// nondecreasing time order; events scheduled for the same instant are
// dequeued in the order they were inserted (FIFO), which makes every
// simulation run fully deterministic.
package eventq

import (
	"container/heap"

	"broadway/internal/simtime"
)

// Item is a scheduled entry in the queue.
type Item struct {
	// At is the instant the item fires.
	At simtime.Time
	// Payload is the caller's event data.
	Payload any

	seq   uint64 // insertion order, breaks ties deterministically
	index int    // position in the heap; -1 once removed
}

// Queue is a time-ordered event queue. The zero value is ready to use.
// Queue is not safe for concurrent use; the simulator is single-threaded
// by design.
type Queue struct {
	h       itemHeap
	nextSeq uint64
}

// Len returns the number of pending items.
func (q *Queue) Len() int { return len(q.h) }

// Push schedules payload to fire at the given instant and returns a handle
// that can later be passed to Remove.
func (q *Queue) Push(at simtime.Time, payload any) *Item {
	it := &Item{At: at, Payload: payload, seq: q.nextSeq}
	q.nextSeq++
	heap.Push(&q.h, it)
	return it
}

// Pop removes and returns the earliest item. It returns nil when the queue
// is empty.
func (q *Queue) Pop() *Item {
	if len(q.h) == 0 {
		return nil
	}
	it := heap.Pop(&q.h).(*Item)
	return it
}

// Peek returns the earliest item without removing it, or nil when empty.
func (q *Queue) Peek() *Item {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Remove cancels a previously pushed item. It reports whether the item was
// still pending. Removing an item twice is safe and returns false.
func (q *Queue) Remove(it *Item) bool {
	if it == nil || it.index < 0 || it.index >= len(q.h) || q.h[it.index] != it {
		return false
	}
	heap.Remove(&q.h, it.index)
	return true
}

// itemHeap implements heap.Interface ordered by (At, seq).
type itemHeap []*Item

var _ heap.Interface = (*itemHeap)(nil)

func (h itemHeap) Len() int { return len(h) }

func (h itemHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h itemHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *itemHeap) Push(x any) {
	it := x.(*Item)
	it.index = len(*h)
	*h = append(*h, it)
}

func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}
