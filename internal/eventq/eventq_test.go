package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"broadway/internal/simtime"
)

func at(d time.Duration) simtime.Time { return simtime.At(d) }

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Error("fresh queue not empty")
	}
	if q.Pop() != nil {
		t.Error("Pop on empty queue must return nil")
	}
	if q.Peek() != nil {
		t.Error("Peek on empty queue must return nil")
	}
}

func TestPopOrderByTime(t *testing.T) {
	var q Queue
	q.Push(at(3*time.Second), "c")
	q.Push(at(1*time.Second), "a")
	q.Push(at(2*time.Second), "b")

	var got []string
	for it := q.Pop(); it != nil; it = q.Pop() {
		got = append(got, it.Payload.(string))
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestFIFOForEqualTimes(t *testing.T) {
	var q Queue
	const n = 50
	for i := 0; i < n; i++ {
		q.Push(at(time.Second), i)
	}
	for i := 0; i < n; i++ {
		it := q.Pop()
		if it.Payload.(int) != i {
			t.Fatalf("tie-break not FIFO: got %d at position %d", it.Payload, i)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue
	q.Push(at(time.Second), "x")
	if q.Peek().Payload.(string) != "x" {
		t.Fatal("Peek wrong item")
	}
	if q.Len() != 1 {
		t.Fatal("Peek must not remove")
	}
	if q.Pop().Payload.(string) != "x" {
		t.Fatal("Pop after Peek wrong item")
	}
}

func TestRemove(t *testing.T) {
	var q Queue
	a := q.Push(at(1*time.Second), "a")
	b := q.Push(at(2*time.Second), "b")
	c := q.Push(at(3*time.Second), "c")

	if !q.Remove(b) {
		t.Fatal("Remove of pending item must return true")
	}
	if q.Remove(b) {
		t.Fatal("second Remove must return false")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d after remove", q.Len())
	}
	if got := q.Pop(); got != a {
		t.Fatalf("first pop = %v", got.Payload)
	}
	if got := q.Pop(); got != c {
		t.Fatalf("second pop = %v", got.Payload)
	}
	if q.Remove(a) {
		t.Fatal("Remove of already-popped item must return false")
	}
	if q.Remove(nil) {
		t.Fatal("Remove(nil) must return false")
	}
}

func TestRemoveHead(t *testing.T) {
	var q Queue
	a := q.Push(at(1*time.Second), "a")
	q.Push(at(2*time.Second), "b")
	if !q.Remove(a) {
		t.Fatal("Remove head failed")
	}
	if q.Pop().Payload.(string) != "b" {
		t.Fatal("wrong item after removing head")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Queue
	q.Push(at(5*time.Second), 5)
	q.Push(at(1*time.Second), 1)
	if got := q.Pop().Payload.(int); got != 1 {
		t.Fatalf("got %d", got)
	}
	q.Push(at(3*time.Second), 3)
	q.Push(at(2*time.Second), 2)
	for _, want := range []int{2, 3, 5} {
		if got := q.Pop().Payload.(int); got != want {
			t.Fatalf("got %d, want %d", got, want)
		}
	}
}

func TestPropertyDequeueSorted(t *testing.T) {
	f := func(times []uint32) bool {
		var q Queue
		for _, v := range times {
			q.Push(simtime.Time(v), v)
		}
		prev := simtime.Time(-1)
		for it := q.Pop(); it != nil; it = q.Pop() {
			if it.At < prev {
				return false
			}
			prev = it.At
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyMatchesSort(t *testing.T) {
	f := func(times []uint16) bool {
		var q Queue
		for _, v := range times {
			q.Push(simtime.Time(v), nil)
		}
		want := make([]simtime.Time, len(times))
		for i, v := range times {
			want[i] = simtime.Time(v)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := 0; i < len(want); i++ {
			if got := q.Pop(); got.At != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomRemovalsKeepOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q Queue
	var items []*Item
	for i := 0; i < 500; i++ {
		items = append(items, q.Push(simtime.Time(rng.Intn(1000)), i))
	}
	removed := map[*Item]bool{}
	for i := 0; i < 200; i++ {
		it := items[rng.Intn(len(items))]
		if !removed[it] {
			if !q.Remove(it) {
				t.Fatal("remove of pending item failed")
			}
			removed[it] = true
		}
	}
	prev := simtime.Time(-1)
	count := 0
	for it := q.Pop(); it != nil; it = q.Pop() {
		if removed[it] {
			t.Fatal("popped a removed item")
		}
		if it.At < prev {
			t.Fatal("ordering violated after removals")
		}
		prev = it.At
		count++
	}
	if count != 500-len(removedKeys(removed)) {
		t.Fatalf("popped %d items, want %d", count, 500-len(removedKeys(removed)))
	}
}

func removedKeys(m map[*Item]bool) []*Item {
	out := make([]*Item, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func BenchmarkPushPop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var q Queue
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(simtime.Time(rng.Intn(1<<20)), nil)
		if q.Len() > 1024 {
			q.Pop()
		}
	}
}
